// The recovery escalation ladder (fault/recovery.hpp): policy grammar
// round-trips, every rung of the state machine driven through a fake
// scheduler (correctable burst -> downtrain -> probation restore,
// non-fatal threshold -> FLR, fatal -> containment -> hot reset ->
// re-enumeration, reset budget -> quarantine), and the edge cases the
// sim wiring depends on — self-inflicted FLR fallout must not escalate,
// a genuine surprise link-down during the FLR window must.
#include "fault/recovery.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "fault/aer.hpp"

namespace pcieb::fault {
namespace {

// ---------------------------------------------------------------- policy

TEST(RecoveryPolicy, NamedPoliciesAndDescribeRoundTrip) {
  EXPECT_FALSE(parse_recovery_policy("none").enabled);
  EXPECT_FALSE(parse_recovery_policy("").enabled);

  for (const char* name : {"default", "aggressive", "conservative"}) {
    const RecoveryPolicy p = parse_recovery_policy(name);
    EXPECT_TRUE(p.enabled) << name;
    EXPECT_EQ(p.describe(), name);
    EXPECT_EQ(parse_recovery_policy(p.describe()), p) << name;
  }

  // Named bases actually differ where it matters.
  const auto aggr = recovery_policy_named("aggressive");
  const auto cons = recovery_policy_named("conservative");
  EXPECT_LT(aggr.nonfatal_threshold, cons.nonfatal_threshold);
  EXPECT_GT(aggr.max_resets, cons.max_resets);
}

TEST(RecoveryPolicy, OverridesParseAndRoundTrip) {
  const RecoveryPolicy p = parse_recovery_policy(
      "default,correctable-burst=5,correctable-window=20us,probation=1ms,"
      "lanes=2,gen=2,nonfatal-threshold=7,flr-duration=3us,holdoff=9us,"
      "reset-duration=44us,max-resets=9");
  EXPECT_EQ(p.correctable_burst, 5u);
  EXPECT_EQ(p.correctable_window, from_micros(20));
  EXPECT_EQ(p.degraded_probation, from_millis(1));
  EXPECT_EQ(p.downtrain_lanes, 2u);
  EXPECT_EQ(p.downtrain_gen, 2u);
  EXPECT_EQ(p.nonfatal_threshold, 7u);
  EXPECT_EQ(p.flr_duration, from_micros(3));
  EXPECT_EQ(p.containment_holdoff, from_micros(9));
  EXPECT_EQ(p.reset_duration, from_micros(44));
  EXPECT_EQ(p.max_resets, 9u);

  // describe() emits the canonical default+overrides form; a second trip
  // is the identity and a fixed point.
  const std::string text = p.describe();
  EXPECT_EQ(parse_recovery_policy(text), p);
  EXPECT_EQ(parse_recovery_policy(text).describe(), text);

  // Overrides on a non-default base round-trip through the default base.
  const RecoveryPolicy q = parse_recovery_policy("aggressive,max-resets=1");
  EXPECT_EQ(parse_recovery_policy(q.describe()), q);
}

TEST(RecoveryPolicy, MalformedSpecsRejected) {
  const std::vector<std::pair<const char*, const char*>> bad = {
      {"bogus", "unknown policy"},
      {"none,max-resets=1", "'none' takes no overrides"},
      {"default,", "empty key=value item"},
      {"default,max-resets", "expected key=value"},
      {"default,flavor=mild", "unknown key"},
      {"default,correctable-burst=0", "correctable-burst must be >= 1"},
      {"default,correctable-burst=abc", "bad integer"},
      {"default,correctable-window=0", "correctable-window must be > 0"},
      {"default,probation=-1us", "negative time"},
      {"default,probation=2parsecs", "bad time unit"},
      {"default,lanes=3", "lanes must be"},
      {"default,gen=0", "gen must be 1..5"},
      {"default,gen=6", "gen must be 1..5"},
      {"default,nonfatal-threshold=0", "nonfatal-threshold must be >= 1"},
  };
  for (const auto& [spec, want] : bad) {
    try {
      parse_recovery_policy(spec);
      FAIL() << "accepted malformed policy: '" << spec << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(want), std::string::npos)
          << "spec '" << spec << "' raised: " << e.what();
    }
  }
}

// ----------------------------------------------------- ladder unit rig
//
// A fake deterministic scheduler + counting action table: the manager is
// sim-agnostic, so every rung can be driven by hand with exact clocks.
struct Rig {
  struct Pending {
    Picos due;
    std::uint64_t seq;
    std::function<void()> fn;
  };

  Picos now = 0;
  std::uint64_t seq = 0;
  std::vector<Pending> queue;
  int downtrains = 0, restores = 0, flrs = 0, contains = 0, hot_resets = 0;
  unsigned last_lanes = 0, last_gen = 0;

  RecoveryManager::Actions actions() {
    RecoveryManager::Actions a;
    a.downtrain = [this](unsigned lanes, unsigned gen) {
      ++downtrains;
      last_lanes = lanes;
      last_gen = gen;
    };
    a.restore_link = [this] { ++restores; };
    a.flr = [this] { ++flrs; };
    a.contain = [this] { ++contains; };
    a.hot_reset = [this] { ++hot_resets; };
    a.schedule = [this](Picos delay, std::function<void()> fn) {
      queue.push_back({now + delay, seq++, std::move(fn)});
    };
    a.now = [this] { return now; };
    return a;
  }

  /// Advance to `t`, running due callbacks in (time, insertion) order —
  /// the same tie-break the real Simulator uses.
  void run_until(Picos t) {
    for (;;) {
      std::size_t best = queue.size();
      for (std::size_t i = 0; i < queue.size(); ++i) {
        if (queue[i].due > t) continue;
        if (best == queue.size() || queue[i].due < queue[best].due ||
            (queue[i].due == queue[best].due &&
             queue[i].seq < queue[best].seq)) {
          best = i;
        }
      }
      if (best == queue.size()) break;
      Pending p = std::move(queue[best]);
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(best));
      now = p.due;
      p.fn();
    }
    now = t;
  }

  static ErrorRecord err(ErrorType type, Picos ts) {
    ErrorRecord r;
    r.type = type;
    r.ts = ts;
    return r;
  }
};

RecoveryPolicy test_policy() {
  RecoveryPolicy p = recovery_policy_named("default");
  p.correctable_burst = 3;
  p.correctable_window = 1000;
  p.degraded_probation = 5000;
  p.downtrain_lanes = 2;
  p.downtrain_gen = 1;
  p.nonfatal_threshold = 2;
  p.flr_duration = 100;
  p.containment_holdoff = 200;
  p.reset_duration = 300;
  p.max_resets = 2;
  return p;
}

TEST(RecoveryLadder, CorrectableBurstDowntrainsThenProbationRestores) {
  Rig rig;
  RecoveryManager rm(test_policy(), rig.actions());
  EXPECT_EQ(rm.state(), RecoveryState::Operational);
  EXPECT_TRUE(rm.converged());

  // Two correctables inside the window: below the burst, nothing moves.
  rig.now = 10;
  rm.on_error(Rig::err(ErrorType::BadTlp, 10));
  rig.now = 20;
  rm.on_error(Rig::err(ErrorType::ReplayTimeout, 20));
  EXPECT_EQ(rm.state(), RecoveryState::Operational);
  EXPECT_EQ(rig.downtrains, 0);

  // Third one completes the burst: Degraded, deferred downtrain with the
  // policy's lanes/gen targets.
  rig.now = 30;
  rm.on_error(Rig::err(ErrorType::BadTlp, 30));
  EXPECT_EQ(rm.state(), RecoveryState::Degraded);
  EXPECT_TRUE(rm.link_degraded());
  EXPECT_FALSE(rm.converged());
  EXPECT_EQ(rig.downtrains, 0);  // action deferred, not yet run
  rig.run_until(31);
  EXPECT_EQ(rig.downtrains, 1);
  EXPECT_EQ(rig.last_lanes, 2u);
  EXPECT_EQ(rig.last_gen, 1u);

  // A clean probation period restores the link.
  rig.run_until(30 + 5000 + 1);
  EXPECT_EQ(rm.state(), RecoveryState::Operational);
  EXPECT_FALSE(rm.link_degraded());
  EXPECT_EQ(rig.restores, 1);
  EXPECT_EQ(rm.downtrains(), 1u);
  EXPECT_EQ(rm.restores(), 1u);
}

TEST(RecoveryLadder, ProbationExtendsWhileCorrectablesKeepArriving) {
  Rig rig;
  RecoveryManager rm(test_policy(), rig.actions());
  for (Picos t : {10, 20, 30}) {
    rig.now = t;
    rm.on_error(Rig::err(ErrorType::BadTlp, t));
  }
  ASSERT_EQ(rm.state(), RecoveryState::Degraded);

  // A correctable late in probation pushes the horizon out: still
  // Degraded at the original deadline, restored one full clean period
  // after the last correctable.
  rig.run_until(4000);
  rm.on_error(Rig::err(ErrorType::BadTlp, 4000));
  rig.run_until(30 + 5000 + 1);
  EXPECT_EQ(rm.state(), RecoveryState::Degraded);
  rig.run_until(4000 + 5000 + 1);
  EXPECT_EQ(rm.state(), RecoveryState::Operational);
  EXPECT_EQ(rig.restores, 1);
}

TEST(RecoveryLadder, StaleCorrectablesOutsideWindowNeverTrip) {
  Rig rig;
  RecoveryManager rm(test_policy(), rig.actions());
  // Three correctables, each a full window apart: the sliding window
  // never holds more than one.
  for (Picos t : {0, 2000, 4000}) {
    rig.now = t;
    rm.on_error(Rig::err(ErrorType::BadTlp, t));
  }
  EXPECT_EQ(rm.state(), RecoveryState::Operational);
  EXPECT_EQ(rm.downtrains(), 0u);
}

TEST(RecoveryLadder, NonFatalThresholdTriggersFlrThenBackToOperational) {
  Rig rig;
  RecoveryManager rm(test_policy(), rig.actions());
  rig.now = 50;
  rm.on_error(Rig::err(ErrorType::CompletionTimeout, 50));
  EXPECT_EQ(rm.state(), RecoveryState::Operational);

  rig.now = 60;
  rm.on_error(Rig::err(ErrorType::PoisonedTlp, 60));
  EXPECT_EQ(rm.state(), RecoveryState::Resetting);
  rig.run_until(61);
  EXPECT_EQ(rig.flrs, 1);

  rig.run_until(60 + 100 + 1);
  EXPECT_EQ(rm.state(), RecoveryState::Operational);
  EXPECT_EQ(rm.flrs(), 1u);
  // The counter reset with the FLR: one more non-fatal doesn't re-trip.
  rig.now = 500;
  rm.on_error(Rig::err(ErrorType::PoisonedTlp, 500));
  EXPECT_EQ(rm.state(), RecoveryState::Operational);
}

TEST(RecoveryLadder, FlrFromDegradedReturnsToDegradedAndKeepsProbation) {
  Rig rig;
  RecoveryManager rm(test_policy(), rig.actions());
  for (Picos t : {10, 20, 30}) {
    rig.now = t;
    rm.on_error(Rig::err(ErrorType::BadTlp, t));
  }
  ASSERT_EQ(rm.state(), RecoveryState::Degraded);
  rig.run_until(40);

  rig.now = 50;
  rm.on_error(Rig::err(ErrorType::PoisonedTlp, 50));
  rig.now = 60;
  rm.on_error(Rig::err(ErrorType::PoisonedTlp, 60));
  ASSERT_EQ(rm.state(), RecoveryState::Resetting);

  // The downtrain is still active when the FLR completes, so the ladder
  // lands back in Degraded — and probation still eventually restores.
  rig.run_until(60 + 100 + 1);
  EXPECT_EQ(rm.state(), RecoveryState::Degraded);
  EXPECT_TRUE(rm.link_degraded());
  rig.run_until(20000);
  EXPECT_EQ(rm.state(), RecoveryState::Operational);
  EXPECT_EQ(rig.restores, 1);
}

TEST(RecoveryLadder, FatalContainsHotResetsAndReenumerates) {
  Rig rig;
  RecoveryManager rm(test_policy(), rig.actions());
  rig.now = 1000;
  rm.on_error(Rig::err(ErrorType::SurpriseLinkDown, 1000));
  EXPECT_EQ(rm.state(), RecoveryState::Contained);
  rig.run_until(1001);
  EXPECT_EQ(rig.contains, 1);

  // A second fatal during containment is expected fallout — ignored.
  rig.now = 1100;
  rm.on_error(Rig::err(ErrorType::TransactionFailed, 1100));
  EXPECT_EQ(rm.containments(), 1u);

  rig.run_until(1000 + 200 + 1);  // holdoff
  EXPECT_EQ(rm.state(), RecoveryState::Resetting);
  rig.run_until(1200 + 300 + 1);  // reset duration
  EXPECT_EQ(rm.state(), RecoveryState::Operational);
  EXPECT_EQ(rig.hot_resets, 1);
  EXPECT_EQ(rm.hot_resets(), 1u);
  EXPECT_TRUE(rm.converged());
}

TEST(RecoveryLadder, ResetBudgetExhaustedQuarantinesForever) {
  Rig rig;
  RecoveryManager rm(test_policy(), rig.actions());  // max_resets = 2
  Picos t = 0;
  for (int episode = 0; episode < 2; ++episode) {
    t += 10000;
    rig.now = t;
    rm.on_error(Rig::err(ErrorType::SurpriseLinkDown, t));
    ASSERT_EQ(rm.state(), RecoveryState::Contained) << episode;
    rig.run_until(t + 601);
    ASSERT_EQ(rm.state(), RecoveryState::Operational) << episode;
  }

  t += 10000;
  rig.now = t;
  rm.on_error(Rig::err(ErrorType::SurpriseLinkDown, t));
  rig.run_until(t + 10000);
  EXPECT_EQ(rm.state(), RecoveryState::Quarantined);
  EXPECT_TRUE(rm.converged());
  EXPECT_EQ(rm.quarantines(), 1u);
  EXPECT_EQ(rig.hot_resets, 2);

  // Quarantine is terminal: further errors of any severity are inert.
  rig.now = t + 20000;
  rm.on_error(Rig::err(ErrorType::SurpriseLinkDown, rig.now));
  rm.on_error(Rig::err(ErrorType::PoisonedTlp, rig.now));
  rm.on_error(Rig::err(ErrorType::BadTlp, rig.now));
  rig.run_until(t + 40000);
  EXPECT_EQ(rm.state(), RecoveryState::Quarantined);
  EXPECT_EQ(rm.containments(), 3u);  // the third containment quarantined
  EXPECT_EQ(rig.hot_resets, 2);
}

TEST(RecoveryLadder, FlrFalloutDoesNotEscalateButLinkDownDoes) {
  // The FLR aborts in-flight work, which records fatal-class AER
  // (TransactionFailed). That self-inflicted fallout must not trip
  // containment — but a genuine surprise link-down during the FLR
  // window must.
  {
    Rig rig;
    RecoveryManager rm(test_policy(), rig.actions());
    rig.now = 10;
    rm.on_error(Rig::err(ErrorType::PoisonedTlp, 10));
    rig.now = 20;
    rm.on_error(Rig::err(ErrorType::PoisonedTlp, 20));
    ASSERT_EQ(rm.state(), RecoveryState::Resetting);
    rig.now = 30;
    rm.on_error(Rig::err(ErrorType::TransactionFailed, 30));
    EXPECT_EQ(rm.state(), RecoveryState::Resetting);
    EXPECT_EQ(rm.containments(), 0u);
    rig.run_until(20 + 100 + 1);
    EXPECT_EQ(rm.state(), RecoveryState::Operational);
  }
  {
    Rig rig;
    RecoveryManager rm(test_policy(), rig.actions());
    rig.now = 10;
    rm.on_error(Rig::err(ErrorType::PoisonedTlp, 10));
    rig.now = 20;
    rm.on_error(Rig::err(ErrorType::PoisonedTlp, 20));
    ASSERT_EQ(rm.state(), RecoveryState::Resetting);
    rig.now = 30;
    rm.on_error(Rig::err(ErrorType::SurpriseLinkDown, 30));
    EXPECT_EQ(rm.state(), RecoveryState::Contained);
    // The stale finish_flr callback fires into the containment and must
    // not drag the state back.
    rig.run_until(20 + 100 + 1);
    EXPECT_EQ(rm.state(), RecoveryState::Contained);
    rig.run_until(30 + 200 + 300 + 1);
    EXPECT_EQ(rm.state(), RecoveryState::Operational);
    EXPECT_EQ(rig.hot_resets, 1);
  }
}

TEST(RecoveryLadder, HotResetWipesDowntrainAndCounters) {
  Rig rig;
  RecoveryManager rm(test_policy(), rig.actions());
  for (Picos t : {10, 20, 30}) {
    rig.now = t;
    rm.on_error(Rig::err(ErrorType::BadTlp, t));
  }
  ASSERT_TRUE(rm.link_degraded());
  rig.now = 100;
  rm.on_error(Rig::err(ErrorType::SurpriseLinkDown, 100));
  rig.run_until(100 + 200 + 300 + 1);
  EXPECT_EQ(rm.state(), RecoveryState::Operational);
  // Re-enumeration restored full width: no downtrain left, and no stale
  // restore fired for it.
  EXPECT_FALSE(rm.link_degraded());
  EXPECT_EQ(rig.restores, 0);
}

TEST(RecoveryLadder, DigestAndTableAreCanonical) {
  Rig rig;
  RecoveryManager rm(test_policy(), rig.actions());
  EXPECT_EQ(rm.digest(), "");

  rig.now = 1000;
  rm.on_error(Rig::err(ErrorType::SurpriseLinkDown, 1000));
  rig.run_until(2000);
  EXPECT_EQ(rm.digest(),
            "1000:operational>contained:fatal;"
            "1200:contained>resetting:hot-reset;"
            "1500:resetting>operational:re-enumerated");
  EXPECT_EQ(rm.transitions(), 3u);

  const std::string table = rm.to_table();
  EXPECT_NE(table.find("recovery ladder"), std::string::npos);
  EXPECT_NE(table.find("hot resets 1"), std::string::npos);
  EXPECT_NE(table.find("contained -> resetting"), std::string::npos);
}

TEST(RecoveryLadder, EventsSnapshotDeliveredBytes) {
  Rig rig;
  std::uint64_t delivered = 0;
  RecoveryManager::Actions a = rig.actions();
  a.delivered_bytes = [&delivered] { return delivered; };
  RecoveryManager rm(test_policy(), std::move(a));

  delivered = 111;
  rig.now = 10;
  rm.on_error(Rig::err(ErrorType::SurpriseLinkDown, 10));
  delivered = 222;
  rig.run_until(10 + 200 + 300 + 1);
  ASSERT_EQ(rm.events().size(), 3u);
  EXPECT_EQ(rm.events()[0].bytes, 111u);
  EXPECT_EQ(rm.events()[2].bytes, 222u);
}

TEST(RecoveryLadder, TransitionsNotifyAndMirrorIntoTrace) {
  Rig rig;
  int notifications = 0;
  RecoveryManager::Actions a = rig.actions();
  a.on_transition = [&notifications] { ++notifications; };
  RecoveryManager rm(test_policy(), std::move(a));
  obs::TraceSink sink(16);
  rm.set_trace(&sink);

  rig.now = 10;
  rm.on_error(Rig::err(ErrorType::SurpriseLinkDown, 10));
  rig.run_until(1000);
  EXPECT_EQ(notifications, 3);
  ASSERT_EQ(sink.size(), 3u);
  const auto events = sink.events();
  EXPECT_EQ(events[0].kind, obs::EventKind::RecoveryTransition);
  // flags packs (from << 4) | to.
  EXPECT_EQ(events[0].flags,
            (static_cast<unsigned>(RecoveryState::Operational) << 4) |
                static_cast<unsigned>(RecoveryState::Contained));
}

TEST(RecoveryLadder, DisabledPolicyIgnoresEverything) {
  Rig rig;
  RecoveryManager rm(RecoveryPolicy{}, rig.actions());
  rig.now = 10;
  rm.on_error(Rig::err(ErrorType::SurpriseLinkDown, 10));
  EXPECT_EQ(rm.state(), RecoveryState::Operational);
  EXPECT_TRUE(rm.events().empty());
  EXPECT_TRUE(rig.queue.empty());
}

TEST(RecoveryLadder, EnabledPolicyRequiresSchedulerHooks) {
  RecoveryPolicy p = recovery_policy_named("default");
  EXPECT_THROW(RecoveryManager(p, RecoveryManager::Actions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pcieb::fault
