// Lazy bulk warm (warm_host_range / warm_device_range) identity: the
// bulk form must be byte-identical — tags, LRU stamps, valid/dirty bits,
// statistics, and every subsequent probe outcome — to the legacy eager
// per-line host_touch / write_allocate loop it replaces. The chaos
// campaign's per-trial prepare_state cost rides on this (hot-path round
// 3), so the equivalence is pinned by a randomized property test plus
// the edge cases the analytic statistics accounting depends on.
#include "sim/cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace pcieb::sim {
namespace {

CacheConfig make_cfg(std::uint64_t sets, unsigned ways, unsigned ddio) {
  CacheConfig cfg;
  cfg.ways = ways;
  cfg.line_bytes = 64;
  cfg.ddio_ways = ddio;
  cfg.size_bytes = sets * ways * cfg.line_bytes;
  return cfg;
}

/// The legacy eager loops System::warm_host/warm_device used to run.
void eager_warm_host(LastLevelCache& c, std::uint64_t addr, std::uint64_t len,
                     bool dirty) {
  const unsigned line = c.config().line_bytes;
  for (std::uint64_t o = 0; o < len; o += line) c.host_touch(addr + o, dirty);
}

void eager_warm_device(LastLevelCache& c, std::uint64_t addr,
                       std::uint64_t len) {
  const unsigned line = c.config().line_bytes;
  for (std::uint64_t o = 0; o < len; o += line) c.write_allocate(addr + o);
}

void expect_stats_equal(const LastLevelCache& lazy, const LastLevelCache& ref,
                        const std::string& where) {
  EXPECT_EQ(lazy.hits(), ref.hits()) << where;
  EXPECT_EQ(lazy.misses(), ref.misses()) << where;
  EXPECT_EQ(lazy.dirty_evictions(), ref.dirty_evictions()) << where;
  EXPECT_EQ(lazy.ddio_allocations(), ref.ddio_allocations()) << where;
  EXPECT_EQ(lazy.ddio_evictions(), ref.ddio_evictions()) << where;
}

/// Drive both caches through an identical random probe mix and demand
/// identical outcomes at every step. Outcome identity transitively pins
/// the tag/LRU/valid/dirty state the warm left behind: a single swapped
/// LRU stamp changes a later eviction choice, which changes a later
/// probe result or statistic.
void expect_probe_identical(LastLevelCache& lazy, LastLevelCache& ref,
                            std::uint64_t seed, std::uint64_t addr_span,
                            int steps) {
  Xoshiro256 rng(seed);
  for (int i = 0; i < steps; ++i) {
    const std::uint64_t addr = rng.below(addr_span) * 64;
    switch (rng.below(4)) {
      case 0:
        ASSERT_EQ(lazy.read_probe(addr), ref.read_probe(addr)) << "step " << i;
        break;
      case 1:
        ASSERT_EQ(lazy.write_allocate(addr), ref.write_allocate(addr))
            << "step " << i;
        break;
      case 2:
        lazy.host_touch(addr, (i & 1) != 0);
        ref.host_touch(addr, (i & 1) != 0);
        break;
      case 3:
        ASSERT_EQ(lazy.contains(addr), ref.contains(addr)) << "step " << i;
        break;
    }
    expect_stats_equal(lazy, ref, "step " + std::to_string(i));
  }
}

TEST(CacheWarmTest, LazyWarmMatchesEagerLoopAcrossRandomizedShapes) {
  Xoshiro256 rng(0xca5e);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t sets = 1ull << (3 + rng.below(4));  // 8..64
    const unsigned ways = static_cast<unsigned>(1 + rng.below(8));
    const unsigned ddio = static_cast<unsigned>(1 + rng.below(ways));
    const CacheConfig cfg = make_cfg(sets, ways, ddio);
    LastLevelCache lazy(cfg), ref(cfg);

    // Random base state: fresh, cleared, or thrashed (all leave a
    // whole-cache fill pending, so the bulk warm takes the lazy path).
    switch (rng.below(3)) {
      case 0: break;
      case 1: lazy.clear(); ref.clear(); break;
      case 2: lazy.thrash(); ref.thrash(); break;
    }

    // Random range, deliberately allowed to wrap every set's replacement
    // domain several times (count up to 3x the cache's line capacity).
    const std::uint64_t count = 1 + rng.below(3 * sets * ways);
    const std::uint64_t base = rng.below(1024) * 64;
    const bool dirty = rng.below(2) == 0;
    const bool ddio_warm = rng.below(3) == 0;
    if (ddio_warm) {
      lazy.warm_device_range(base, count * 64);
      eager_warm_device(ref, base, count * 64);
    } else {
      lazy.warm_host_range(base, count * 64, dirty);
      eager_warm_host(ref, base, count * 64, dirty);
    }
    expect_stats_equal(lazy, ref, "post-warm trial " + std::to_string(trial));

    // Probe over a span covering the warmed range and beyond.
    expect_probe_identical(lazy, ref, 0x9e37 + trial, 1024 + count + 64, 300);
  }
}

TEST(CacheWarmTest, WarmAfterTouchFallsBackAndStillMatches) {
  const CacheConfig cfg = make_cfg(16, 4, 2);
  LastLevelCache lazy(cfg), ref(cfg);
  lazy.thrash();
  ref.thrash();
  // A touched set breaks whole-cache pendingness: the bulk form must
  // fall back to the eager loop and still be identical.
  lazy.read_probe(0x40);
  ref.read_probe(0x40);
  lazy.warm_host_range(0, 48 * 64, true);
  eager_warm_host(ref, 0, 48 * 64, true);
  expect_stats_equal(lazy, ref, "fallback");
  expect_probe_identical(lazy, ref, 0xfa11, 256, 200);
}

TEST(CacheWarmTest, SecondRangeFallsBackAndStillMatches) {
  const CacheConfig cfg = make_cfg(16, 4, 2);
  LastLevelCache lazy(cfg), ref(cfg);
  lazy.thrash();
  ref.thrash();
  // Two overlapping warms: the second must not take the lazy path (its
  // touches could hit the first range's lines, breaking the analytic
  // statistics) — and the combined result must match two eager loops.
  lazy.warm_host_range(0, 32 * 64, true);
  eager_warm_host(ref, 0, 32 * 64, true);
  lazy.warm_host_range(16 * 64, 32 * 64, false);
  eager_warm_host(ref, 16 * 64, 32 * 64, false);
  expect_stats_equal(lazy, ref, "two ranges");
  expect_probe_identical(lazy, ref, 0x2ca5e, 256, 200);
}

TEST(CacheWarmTest, ThrashAfterLazyWarmDiscardsOverlayIdentically) {
  const CacheConfig cfg = make_cfg(16, 4, 2);
  LastLevelCache lazy(cfg), ref(cfg);
  lazy.thrash();
  ref.thrash();
  lazy.warm_host_range(0, 40 * 64, true);
  eager_warm_host(ref, 0, 40 * 64, true);
  // A new whole-cache fill supersedes the (unreplayed) warm; clocks and
  // statistics must still line up with the eager world.
  lazy.thrash();
  ref.thrash();
  expect_stats_equal(lazy, ref, "post-thrash");
  expect_probe_identical(lazy, ref, 0x7d1, 256, 200);
}

TEST(CacheWarmTest, MisalignedRangeMatchesEagerLoop) {
  const CacheConfig cfg = make_cfg(16, 4, 2);
  LastLevelCache lazy(cfg), ref(cfg);
  lazy.thrash();
  ref.thrash();
  // Unaligned base and a length that is not a line multiple: the line
  // count must replicate the eager loop's ceil(len/line) iterations.
  lazy.warm_host_range(0x20, 40 * 64 + 17, true);
  eager_warm_host(ref, 0x20, 40 * 64 + 17, true);
  expect_stats_equal(lazy, ref, "misaligned");
  expect_probe_identical(lazy, ref, 0x3b9, 256, 200);
}

TEST(CacheWarmTest, ContainsMaterializesLazyWarm) {
  const CacheConfig cfg = make_cfg(16, 4, 2);
  LastLevelCache cache(cfg);
  cache.thrash();
  cache.warm_host_range(0, 8 * 64, true);
  // contains() is a const probe, but it must still see the lazy warm.
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(7 * 64));
  EXPECT_FALSE(cache.contains(9 * 64));
}

TEST(CacheWarmTest, DeviceWarmWrapsDdioQuotaIdentically) {
  // 8 sets x 4 ways with a 2-way DDIO quota; 80 lines = 10 per set, so
  // every set wraps its quota 8 times — the eviction-statistics edge.
  const CacheConfig cfg = make_cfg(8, 4, 2);
  for (const bool thrashed : {false, true}) {
    LastLevelCache lazy(cfg), ref(cfg);
    if (thrashed) {
      lazy.thrash();
      ref.thrash();
    }
    lazy.warm_device_range(0, 80 * 64);
    eager_warm_device(ref, 0, 80 * 64);
    expect_stats_equal(lazy, ref,
                       thrashed ? "ddio wrap thrashed" : "ddio wrap cold");
    expect_probe_identical(lazy, ref, 0xdd10 + (thrashed ? 1 : 0), 128, 200);
  }
}

}  // namespace
}  // namespace pcieb::sim
