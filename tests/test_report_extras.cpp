// Tests for the §5.4 reporting extensions: histogram, time-series and
// raw-order access.
#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb {
namespace {

TEST(SampleSetRawOrder, RawPreservesInsertionOrder) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  s.add(2.0);
  // Query a sorted statistic first — raw order must survive.
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  const auto& raw = s.raw();
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_DOUBLE_EQ(raw[0], 3.0);
  EXPECT_DOUBLE_EQ(raw[1], 1.0);
  EXPECT_DOUBLE_EQ(raw[2], 2.0);
}

TEST(SampleSetRawOrder, SortedIsAscendingCopy) {
  SampleSet s({5.0, 4.0, 6.0});
  const auto& v = s.sorted();
  EXPECT_DOUBLE_EQ(v.front(), 4.0);
  EXPECT_DOUBLE_EQ(v.back(), 6.0);
  EXPECT_DOUBLE_EQ(s.raw().front(), 5.0);
}

core::LatencyResult small_run() {
  sim::System system(sys::nfp6000_hsw().config);
  core::BenchParams p;
  p.kind = core::BenchKind::LatRd;
  p.iterations = 600;
  return core::run_latency_bench(system, p);
}

TEST(HistogramDump, CountsSumToSamples) {
  const auto r = small_run();
  std::istringstream is(core::histogram_dump(r, 20));
  double lo = 0, hi = 0;
  std::size_t count = 0, total = 0, lines = 0;
  while (is >> lo >> hi >> count) {
    total += count;
    ++lines;
    EXPECT_LT(lo, hi);
  }
  EXPECT_EQ(lines, 20u);
  EXPECT_EQ(total, 600u);
}

TEST(HistogramDump, EmptyInputsAreEmpty) {
  core::LatencyResult r;
  EXPECT_TRUE(core::histogram_dump(r).empty());
  const auto run = small_run();
  EXPECT_TRUE(core::histogram_dump(run, 0).empty());
}

TEST(TimeSeriesDump, ThinnedToRequestedPoints) {
  const auto r = small_run();
  std::istringstream is(core::time_series_dump(r, 100));
  std::size_t idx = 0;
  double value = 0;
  std::size_t lines = 0;
  std::size_t prev_idx = 0;
  bool first = true;
  while (is >> idx >> value) {
    if (!first) EXPECT_GT(idx, prev_idx);
    prev_idx = idx;
    first = false;
    ++lines;
    EXPECT_GT(value, 0.0);
  }
  EXPECT_GE(lines, 100u);
  EXPECT_LE(lines, 101u);
}

TEST(TimeSeriesDump, ValuesComeFromMeasurementOrder) {
  const auto r = small_run();
  std::istringstream is(core::time_series_dump(r, 600));
  std::size_t idx = 0;
  double value = 0;
  while (is >> idx >> value) {
    ASSERT_LT(idx, r.samples_ns.raw().size());
    EXPECT_DOUBLE_EQ(value, r.samples_ns.raw()[idx]);
  }
}

}  // namespace
}  // namespace pcieb
