// Invariant monitors: clean and faulted runs hold every invariant, the
// deliberately seeded credit-return omission is caught at quiesce, throw
// mode raises InvariantError, and detaching a suite frees the hook slot.
#include <gtest/gtest.h>

#include "check/monitors.hpp"
#include "core/params.hpp"
#include "core/runner.hpp"
#include "fault/plan.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb {
namespace {

core::BenchParams small_write_bench(std::size_t iterations = 300) {
  core::BenchParams p;
  p.kind = core::BenchKind::BwWr;
  p.transfer_size = 256;
  p.window_bytes = 8192;
  p.pattern = core::AccessPattern::Sequential;
  p.cache_state = core::CacheState::HostWarm;
  p.numa_local = true;
  p.iterations = iterations;
  return p;
}

TEST(Monitors, CleanRunHoldsEveryInvariant) {
  sim::System system(sys::profile_by_name("NFP6000-HSW").config);
  check::MonitorSuite suite(system);
  core::run_bandwidth_bench(system, small_write_bench());
  suite.check_quiescent();
  EXPECT_TRUE(suite.ok()) << suite.report();
  EXPECT_EQ(suite.total_violations(), 0u);
  EXPECT_NE(suite.report().find("all invariants held"), std::string::npos);
}

TEST(Monitors, FaultedRunHoldsEveryInvariant) {
  // Drops, corruption and ack loss all exercise the recovery paths the
  // conservation laws must survive — losses are accounted, not leaked.
  auto cfg = sys::profile_by_name("NFP6000-HSW").config;
  cfg.fault_plan =
      fault::parse_plan("drop@every=150;corrupt@prob=0.01;ack-loss@every=700");
  sim::System system(cfg);
  check::MonitorSuite suite(system);
  core::run_bandwidth_bench(system, small_write_bench(500));
  suite.check_quiescent();
  EXPECT_TRUE(suite.ok()) << suite.report();
}

TEST(Monitors, FaultedReadRunHoldsEveryInvariant) {
  auto cfg = sys::profile_by_name("NetFPGA-HSW").config;
  cfg.fault_plan = fault::parse_plan("cpl-ur@every=90;poison@prob=0.01");
  sim::System system(cfg);
  check::MonitorSuite suite(system);
  auto p = small_write_bench(400);
  p.kind = core::BenchKind::BwRd;
  core::run_bandwidth_bench(system, p);
  suite.check_quiescent();
  EXPECT_TRUE(suite.ok()) << suite.report();
}

TEST(Monitors, SeededCreditLeakCaughtAtQuiesce) {
  auto cfg = sys::profile_by_name("NFP6000-HSW").config;
  cfg.fault_plan = fault::parse_plan("drop@every=100,dir=up");
  sim::System system(cfg);
  system.test_leak_credits_on_drop(true);

  check::MonitorSuite suite(system);
  core::run_bandwidth_bench(system, small_write_bench(400));
  suite.check_quiescent();

  ASSERT_FALSE(suite.ok()) << "seeded credit leak went undetected";
  ASSERT_FALSE(suite.violations().empty());
  const auto& v = suite.violations().front();
  EXPECT_EQ(v.monitor, "credits");
  EXPECT_NE(v.detail.find("leaked"), std::string::npos) << v.format();
}

TEST(Monitors, ThrowModeRaisesInvariantError) {
  auto cfg = sys::profile_by_name("NFP6000-HSW").config;
  cfg.fault_plan = fault::parse_plan("drop@every=100,dir=up");
  sim::System system(cfg);
  system.test_leak_credits_on_drop(true);

  check::MonitorConfig mc;
  mc.throw_on_violation = true;
  check::MonitorSuite suite(system, mc);
  core::run_bandwidth_bench(system, small_write_bench(400));
  try {
    suite.check_quiescent();
    FAIL() << "expected InvariantError";
  } catch (const check::InvariantError& e) {
    EXPECT_EQ(e.violation().monitor, "credits");
    EXPECT_NE(std::string(e.what()).find("credits"), std::string::npos);
  }
}

TEST(Monitors, DetachFreesTheHookSlot) {
  sim::System system(sys::profile_by_name("NetFPGA-HSW").config);
  {
    check::MonitorSuite suite(system);
    core::run_bandwidth_bench(system, small_write_bench(100));
    suite.check_quiescent();
    EXPECT_TRUE(suite.ok());
  }
  // A second suite can attach to the same system, and mid-life attachment
  // baselines the payload ledgers so prior traffic is not double-counted.
  check::MonitorSuite again(system);
  core::run_bandwidth_bench(system, small_write_bench(100));
  again.check_quiescent();
  EXPECT_TRUE(again.ok()) << again.report();
}

TEST(Monitors, CheckNowOnFreshSystemPasses) {
  sim::System system(sys::profile_by_name("NFP6000-HSW").config);
  check::MonitorSuite suite(system);
  suite.check_now();
  suite.check_quiescent();
  EXPECT_TRUE(suite.ok()) << suite.report();
}

}  // namespace
}  // namespace pcieb
