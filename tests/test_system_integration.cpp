// End-to-end checks of the composed system against the paper's published
// calibration anchors (Figs 4-6) — latency percentiles and bandwidth for
// the NFP6000-HSW / NetFPGA-HSW pairings.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "core/runner.hpp"
#include "pcie/bandwidth.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb {
namespace {

using core::BenchKind;
using core::BenchParams;
using core::CacheState;

core::LatencyResult lat(const sim::SystemConfig& cfg, BenchKind kind,
                        std::uint32_t sz, std::size_t iters = 4000) {
  sim::System system(cfg);
  BenchParams p;
  p.kind = kind;
  p.transfer_size = sz;
  p.window_bytes = 8192;
  p.cache_state = CacheState::HostWarm;
  p.iterations = iters;
  return core::run_latency_bench(system, p);
}

core::BandwidthResult bw(const sim::SystemConfig& cfg, BenchKind kind,
                         std::uint32_t sz, std::size_t iters = 30000) {
  sim::System system(cfg);
  BenchParams p;
  p.kind = kind;
  p.transfer_size = sz;
  p.window_bytes = 8192;
  p.cache_state = CacheState::HostWarm;
  p.iterations = iters;
  return core::run_bandwidth_bench(system, p);
}

// ---- Fig 6 anchors: NFP6000-HSW 64 B warm reads -----------------------------

TEST(Calibration, Fig6XeonE5LatencyPercentiles) {
  auto r = lat(sys::nfp6000_hsw().config, BenchKind::LatRd, 64, 20000);
  // Paper: min 520 ns, median 547 ns, 99.9 % within 80 ns of min, max 947.
  EXPECT_NEAR(r.summary.min_ns, 520.0, 15.0);
  EXPECT_NEAR(r.summary.median_ns, 547.0, 15.0);
  EXPECT_LT(r.summary.p999_ns - r.summary.min_ns, 100.0);
  EXPECT_LT(r.summary.max_ns, 1000.0);
}

TEST(Calibration, Fig6XeonE3LatencyPercentiles) {
  auto r = lat(sys::nfp6000_hsw_e3().config, BenchKind::LatRd, 64, 60000);
  // Paper: min 493, median 1213, p99 5707, p99.9 11987. (The paper's
  // millisecond-scale maximum comes from rare machine-wide stalls that
  // need 2M-sample runs to observe — bench/fig06_latency_cdf runs those;
  // the mechanism itself is unit-tested in test_memory_system.)
  EXPECT_NEAR(r.summary.min_ns, 493.0, 20.0);
  EXPECT_NEAR(r.summary.median_ns, 1213.0, 60.0);
  EXPECT_NEAR(r.summary.p99_ns, 5707.0, 400.0);
  EXPECT_NEAR(r.summary.p999_ns, 11987.0, 1200.0);
}

TEST(Calibration, E3MinimumIsLowerButMedianFarHigherThanE5) {
  auto e5 = lat(sys::nfp6000_hsw().config, BenchKind::LatRd, 64, 8000);
  auto e3 = lat(sys::nfp6000_hsw_e3().config, BenchKind::LatRd, 64, 8000);
  EXPECT_LT(e3.summary.min_ns, e5.summary.min_ns);
  EXPECT_GT(e3.summary.median_ns, 2.0 * e5.summary.median_ns);
}

// ---- Fig 5 anchors: latency vs transfer size -------------------------------

TEST(Calibration, Fig5LatencyGrowsWithTransferSize) {
  const auto cfg = sys::nfp6000_hsw().config;
  double prev = 0.0;
  for (std::uint32_t sz : {8u, 64u, 256u, 1024u, 2048u}) {
    auto r = lat(cfg, BenchKind::LatRd, sz, 1500);
    EXPECT_GT(r.summary.median_ns, prev) << sz;
    prev = r.summary.median_ns;
  }
}

TEST(Calibration, Fig5WrRdAboveRd) {
  const auto cfg = sys::nfp6000_hsw().config;
  for (std::uint32_t sz : {64u, 512u, 2048u}) {
    auto rd = lat(cfg, BenchKind::LatRd, sz, 1500);
    auto wrrd = lat(cfg, BenchKind::LatWrRd, sz, 1500);
    EXPECT_GT(wrrd.summary.median_ns, rd.summary.median_ns) << sz;
  }
}

TEST(Calibration, Fig5NfpCarriesFixedOffsetOverNetfpga) {
  // §6.1: NFP latency ~100 ns above NetFPGA for small transfers
  // (enqueue overhead), gap widening with size (staging transfer).
  auto nfp_small = lat(sys::nfp6000_hsw().config, BenchKind::LatRd, 64, 1500);
  auto fpga_small = lat(sys::netfpga_hsw().config, BenchKind::LatRd, 64, 1500);
  const double small_gap =
      nfp_small.summary.median_ns - fpga_small.summary.median_ns;
  EXPECT_GT(small_gap, 80.0);
  EXPECT_LT(small_gap, 220.0);

  auto nfp_big = lat(sys::nfp6000_hsw().config, BenchKind::LatRd, 2048, 1500);
  auto fpga_big = lat(sys::netfpga_hsw().config, BenchKind::LatRd, 2048, 1500);
  EXPECT_GT(nfp_big.summary.median_ns - fpga_big.summary.median_ns, small_gap);
}

TEST(Calibration, CmdInterfaceClosesTheGap) {
  // §6.1: with the direct PCIe command interface the NFP matches the
  // NetFPGA latency for small transfers.
  sim::System nfp(sys::nfp6000_hsw().config);
  BenchParams p;
  p.kind = BenchKind::LatRd;
  p.transfer_size = 64;
  p.window_bytes = 8192;
  p.cache_state = CacheState::HostWarm;
  p.iterations = 1500;
  p.use_cmd_if = true;
  auto cmd = core::run_latency_bench(nfp, p);
  auto fpga = lat(sys::netfpga_hsw().config, BenchKind::LatRd, 64, 1500);
  EXPECT_NEAR(cmd.summary.median_ns, fpga.summary.median_ns, 40.0);
}

// ---- Fig 4 anchors: baseline bandwidth -------------------------------------

TEST(Calibration, Fig4NetfpgaTracksModelBandwidth) {
  const auto cfg = sys::netfpga_hsw().config;
  for (std::uint32_t sz : {256u, 512u, 1024u, 2048u}) {
    const double model = proto::effective_read_gbps(cfg.link, sz);
    EXPECT_NEAR(bw(cfg, BenchKind::BwRd, sz).gbps, model, model * 0.06) << sz;
    const double wmodel = proto::effective_write_gbps(cfg.link, sz);
    EXPECT_NEAR(bw(cfg, BenchKind::BwWr, sz).gbps, wmodel, wmodel * 0.06) << sz;
  }
}

TEST(Calibration, Fig4NfpSlightlyBelowNetfpga) {
  for (auto kind : {BenchKind::BwRd, BenchKind::BwWr, BenchKind::BwRdWr}) {
    const double nfp = bw(sys::nfp6000_hsw().config, kind, 64).gbps;
    const double fpga = bw(sys::netfpga_hsw().config, kind, 64).gbps;
    EXPECT_LT(nfp, fpga + 0.1) << static_cast<int>(kind);
    EXPECT_GT(nfp, fpga * 0.5) << static_cast<int>(kind);
  }
}

TEST(Calibration, Fig4SmallReadsMiss40GLineRate) {
  // §6.1: "neither implementation is able to achieve a read throughput
  // required to transfer 40Gb/s Ethernet at line rate for small packets".
  const double demand = proto::ethernet_pcie_demand_gbps(40.0, 64);
  EXPECT_LT(bw(sys::nfp6000_hsw().config, BenchKind::BwRd, 64).gbps, demand);
}

TEST(Calibration, Fig4LargeTransfersSustain40G) {
  const double demand = proto::ethernet_pcie_demand_gbps(40.0, 1024);
  EXPECT_GT(bw(sys::nfp6000_hsw().config, BenchKind::BwRd, 1024).gbps, demand);
  EXPECT_GT(bw(sys::nfp6000_hsw().config, BenchKind::BwWr, 1024).gbps, demand);
}

TEST(Calibration, Fig4SawToothVisibleInMeasurement) {
  // +1 B past the MPS boundary costs an extra TLP.
  const auto cfg = sys::netfpga_hsw().config;
  const double at = bw(cfg, BenchKind::BwWr, 256).gbps;
  const double past = bw(cfg, BenchKind::BwWr, 257).gbps;
  EXPECT_GT(at, past + 2.0);
}

TEST(Calibration, RdwrOrdering) {
  // Alternating read/write per-direction goodput sits below both
  // unidirectional results (Fig 4c vs 4a/4b).
  const auto cfg = sys::netfpga_hsw().config;
  for (std::uint32_t sz : {64u, 512u}) {
    const double rd = bw(cfg, BenchKind::BwRd, sz).gbps;
    const double wr = bw(cfg, BenchKind::BwWr, sz).gbps;
    const double rdwr = bw(cfg, BenchKind::BwRdWr, sz).gbps;
    EXPECT_LT(rdwr, rd + 0.2) << sz;
    EXPECT_LT(rdwr, wr + 0.2) << sz;
  }
}

TEST(Calibration, E3WritesNeverReach40GDemand) {
  // §6.2: the E3 "never achieves the throughput required for 40Gb/s
  // Ethernet for any transfer size" on DMA writes.
  const auto cfg = sys::nfp6000_hsw_e3().config;
  for (std::uint32_t sz : {64u, 128u, 256u, 512u, 1024u, 1500u}) {
    const double demand = proto::ethernet_pcie_demand_gbps(40.0, sz);
    EXPECT_LT(bw(cfg, BenchKind::BwWr, sz, 20000).gbps, demand) << sz;
  }
}

TEST(Calibration, E3ReadsMatchE5OnlyForLargeTransfers) {
  const auto e3 = sys::nfp6000_hsw_e3().config;
  const auto e5 = sys::nfp6000_hsw().config;
  EXPECT_LT(bw(e3, BenchKind::BwRd, 64, 20000).gbps,
            0.5 * bw(e5, BenchKind::BwRd, 64, 20000).gbps);
  EXPECT_GT(bw(e3, BenchKind::BwRd, 1024, 20000).gbps,
            0.85 * bw(e5, BenchKind::BwRd, 1024, 20000).gbps);
}

TEST(Calibration, DeterministicAcrossRuns) {
  auto a = lat(sys::nfp6000_hsw().config, BenchKind::LatRd, 64, 1000);
  auto b = lat(sys::nfp6000_hsw().config, BenchKind::LatRd, 64, 1000);
  EXPECT_EQ(a.summary.median_ns, b.summary.median_ns);
  EXPECT_EQ(a.summary.max_ns, b.summary.max_ns);
}

}  // namespace
}  // namespace pcieb
