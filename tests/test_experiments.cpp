// Shape assertions for the §6.3–6.5 experiments: caching/DDIO (Fig 7),
// NUMA (Fig 8) and the IOMMU (Fig 9). These run the same sweeps as the
// bench binaries, at reduced iteration counts, and assert the paper's
// qualitative claims — who wins, where the knees fall, roughly how deep
// the drops are.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "core/runner.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb {
namespace {

using core::BenchKind;
using core::BenchParams;
using core::CacheState;

double lat_med(const sim::SystemConfig& cfg, BenchKind kind, std::uint32_t sz,
               std::uint64_t window, CacheState cs, bool cmd_if,
               std::size_t iters = 3000, std::size_t warmup = 0) {
  sim::System system(cfg);
  BenchParams p;
  p.kind = kind;
  p.transfer_size = sz;
  p.window_bytes = window;
  p.cache_state = cs;
  p.use_cmd_if = cmd_if;
  p.iterations = iters;
  p.warmup = warmup;
  return core::run_latency_bench(system, p).summary.median_ns;
}

double bw_gbps(const sim::SystemConfig& cfg, BenchKind kind, std::uint32_t sz,
               std::uint64_t window, CacheState cs, bool local = true,
               std::uint64_t page = 4096, std::size_t iters = 25000) {
  sim::System system(cfg);
  BenchParams p;
  p.kind = kind;
  p.transfer_size = sz;
  p.window_bytes = window;
  p.cache_state = cs;
  p.numa_local = local;
  p.page_bytes = page;
  p.iterations = iters;
  p.warmup = iters / 5;
  return core::run_bandwidth_bench(system, p).gbps;
}

constexpr std::uint64_t kSmallWindow = 64ull << 10;
constexpr std::uint64_t kHugeWindow = 64ull << 20;

// ---- Fig 7a: cache effects on latency (NFP6000-SNB, 8 B cmd IF) ------------

TEST(Fig7Cache, WarmReadsServedFromLlcSaveAbout70ns) {
  const auto cfg = sys::nfp6000_snb().config;
  const double warm = lat_med(cfg, BenchKind::LatRd, 8, kSmallWindow,
                              CacheState::HostWarm, true);
  const double cold = lat_med(cfg, BenchKind::LatRd, 8, kSmallWindow,
                              CacheState::Thrash, true);
  EXPECT_NEAR(cold - warm, 70.0, 25.0);
}

TEST(Fig7Cache, ColdReadLatencyFlatAcrossWindowSizes) {
  const auto cfg = sys::nfp6000_snb().config;
  const double small = lat_med(cfg, BenchKind::LatRd, 8, kSmallWindow,
                               CacheState::Thrash, true);
  const double huge = lat_med(cfg, BenchKind::LatRd, 8, kHugeWindow,
                              CacheState::Thrash, true);
  EXPECT_NEAR(small, huge, 25.0);
}

TEST(Fig7Cache, WarmReadLatencyRisesPastLlcSize) {
  const auto cfg = sys::nfp6000_snb().config;  // 15 MB LLC
  const double in_cache = lat_med(cfg, BenchKind::LatRd, 8, 4ull << 20,
                                  CacheState::HostWarm, true);
  const double past = lat_med(cfg, BenchKind::LatRd, 8, kHugeWindow,
                              CacheState::HostWarm, true);
  EXPECT_GT(past - in_cache, 45.0);
}

TEST(Fig7Cache, DdioAbsorbsColdWritesInSmallWindows) {
  // Cold WRRD in a window within the DDIO quota is as fast as warm.
  const auto cfg = sys::nfp6000_snb().config;
  const double cold = lat_med(cfg, BenchKind::LatWrRd, 8, kSmallWindow,
                              CacheState::Thrash, true, 3000, 2000);
  const double warm = lat_med(cfg, BenchKind::LatWrRd, 8, kSmallWindow,
                              CacheState::HostWarm, true, 3000, 2000);
  EXPECT_NEAR(cold, warm, 25.0);
}

TEST(Fig7Cache, ColdWritesPayFlushPastDdioQuota) {
  // §6.3: beyond ~10 % of the LLC, dirty lines must be flushed before the
  // write completes, costing ~70 ns. (DDIO quota here: 1.5 MB.)
  const auto cfg = sys::nfp6000_snb().config;
  const double small = lat_med(cfg, BenchKind::LatWrRd, 8, kSmallWindow,
                               CacheState::Thrash, true, 4000, 2000);
  // 60k warm-up transactions saturate the quota's sets in a 16 MB window.
  const double past_quota = lat_med(cfg, BenchKind::LatWrRd, 8, 16ull << 20,
                                    CacheState::Thrash, true, 4000, 60000);
  EXPECT_NEAR(past_quota - small, 65.0, 25.0);
}

// ---- Fig 7b: cache effects on bandwidth -------------------------------------

TEST(Fig7Cache, SmallReadBandwidthBenefitsFromWarmCache) {
  const auto cfg = sys::nfp6000_snb().config;
  const double warm =
      bw_gbps(cfg, BenchKind::BwRd, 64, kSmallWindow, CacheState::HostWarm);
  const double cold =
      bw_gbps(cfg, BenchKind::BwRd, 64, kSmallWindow, CacheState::Thrash);
  EXPECT_GT(warm, cold * 1.08);
}

TEST(Fig7Cache, WarmReadBandwidthFallsToColdPastLlc) {
  const auto cfg = sys::nfp6000_snb().config;
  const double warm_small =
      bw_gbps(cfg, BenchKind::BwRd, 64, kSmallWindow, CacheState::HostWarm);
  const double warm_huge =
      bw_gbps(cfg, BenchKind::BwRd, 64, kHugeWindow, CacheState::HostWarm);
  const double cold =
      bw_gbps(cfg, BenchKind::BwRd, 64, kHugeWindow, CacheState::Thrash);
  EXPECT_LT(warm_huge, warm_small);
  EXPECT_NEAR(warm_huge, cold, cold * 0.08);
}

TEST(Fig7Cache, LargeReadBandwidthInsensitiveToCache) {
  // §6.3: "from 512B DMA Reads onwards, there is no measurable difference".
  const auto cfg = sys::nfp6000_snb().config;
  const double warm =
      bw_gbps(cfg, BenchKind::BwRd, 512, kSmallWindow, CacheState::HostWarm);
  const double cold =
      bw_gbps(cfg, BenchKind::BwRd, 512, kSmallWindow, CacheState::Thrash);
  EXPECT_NEAR(warm, cold, warm * 0.03);
}

TEST(Fig7Cache, WriteBandwidthInsensitiveToCacheState) {
  // §6.3: "For DMA Writes, there is no benefit if the data is resident".
  const auto cfg = sys::nfp6000_snb().config;
  for (std::uint64_t window : {kSmallWindow, std::uint64_t{4} << 20, kHugeWindow}) {
    const double warm =
        bw_gbps(cfg, BenchKind::BwWr, 64, window, CacheState::HostWarm);
    const double cold =
        bw_gbps(cfg, BenchKind::BwWr, 64, window, CacheState::Thrash);
    EXPECT_NEAR(warm, cold, warm * 0.03) << window;
  }
}

// ---- Fig 8: NUMA (NFP6000-BDW, warm) ----------------------------------------

TEST(Fig8Numa, Remote64BReadsDropAbout20PercentWhenCacheResident) {
  const auto cfg = sys::nfp6000_bdw().config;
  const double local =
      bw_gbps(cfg, BenchKind::BwRd, 64, kSmallWindow, CacheState::HostWarm, true);
  const double remote = bw_gbps(cfg, BenchKind::BwRd, 64, kSmallWindow,
                                CacheState::HostWarm, false);
  const double drop = core::pct_change(local, remote);
  EXPECT_LT(drop, -15.0);
  EXPECT_GT(drop, -30.0);
}

TEST(Fig8Numa, PenaltyShrinksOnceOutOfCache) {
  const auto cfg = sys::nfp6000_bdw().config;  // 25 MB LLC
  const double local = bw_gbps(cfg, BenchKind::BwRd, 64, kHugeWindow,
                               CacheState::HostWarm, true);
  const double remote = bw_gbps(cfg, BenchKind::BwRd, 64, kHugeWindow,
                                CacheState::HostWarm, false);
  const double drop_out = core::pct_change(local, remote);
  const double drop_in = core::pct_change(
      bw_gbps(cfg, BenchKind::BwRd, 64, kSmallWindow, CacheState::HostWarm, true),
      bw_gbps(cfg, BenchKind::BwRd, 64, kSmallWindow, CacheState::HostWarm,
              false));
  EXPECT_GT(drop_out, drop_in);  // less negative
}

TEST(Fig8Numa, MidSizePenaltySingleDigit) {
  const auto cfg = sys::nfp6000_bdw().config;
  const double local = bw_gbps(cfg, BenchKind::BwRd, 128, kSmallWindow,
                               CacheState::HostWarm, true);
  const double remote = bw_gbps(cfg, BenchKind::BwRd, 128, kSmallWindow,
                                CacheState::HostWarm, false);
  const double drop = core::pct_change(local, remote);
  EXPECT_LT(drop, -1.0);
  EXPECT_GT(drop, -12.0);
}

TEST(Fig8Numa, NoPenaltyFor512BReads) {
  const auto cfg = sys::nfp6000_bdw().config;
  const double local = bw_gbps(cfg, BenchKind::BwRd, 512, kSmallWindow,
                               CacheState::HostWarm, true);
  const double remote = bw_gbps(cfg, BenchKind::BwRd, 512, kSmallWindow,
                                CacheState::HostWarm, false);
  EXPECT_NEAR(local, remote, local * 0.02);
}

TEST(Fig8Numa, WriteThroughputUnaffectedByLocality) {
  // §6.4: "throughput of DMA Writes does not seem to be affected by the
  // locality of the host buffer".
  const auto cfg = sys::nfp6000_bdw().config;
  const double local =
      bw_gbps(cfg, BenchKind::BwWr, 64, kSmallWindow, CacheState::HostWarm, true);
  const double remote = bw_gbps(cfg, BenchKind::BwWr, 64, kSmallWindow,
                                CacheState::HostWarm, false);
  EXPECT_NEAR(local, remote, local * 0.02);
}

TEST(Fig8Numa, RemoteAddsAbout100nsLatency) {
  const auto cfg = sys::nfp6000_bdw().config;
  sim::System sys_local(cfg);
  BenchParams p;
  p.kind = BenchKind::LatRd;
  p.transfer_size = 64;
  p.window_bytes = kSmallWindow;
  p.cache_state = CacheState::HostWarm;
  p.iterations = 2000;
  auto local = core::run_latency_bench(sys_local, p);
  sim::System sys_remote(cfg);
  p.numa_local = false;
  auto remote = core::run_latency_bench(sys_remote, p);
  EXPECT_NEAR(remote.summary.median_ns - local.summary.median_ns, 90.0, 35.0);
}

// ---- Fig 9: IOMMU (NFP6000-BDW, warm, 4 KB pages) ---------------------------

TEST(Fig9Iommu, NoImpactWhileWindowFitsTlb) {
  // 64 entries x 4 KB = 256 KB of reach.
  const auto base = sys::nfp6000_bdw().config;
  const auto on = sys::with_iommu(base, true, 4096);
  for (std::uint32_t sz : {64u, 256u}) {
    const double off =
        bw_gbps(base, BenchKind::BwRd, sz, 128ull << 10, CacheState::HostWarm);
    const double with =
        bw_gbps(on, BenchKind::BwRd, sz, 128ull << 10, CacheState::HostWarm);
    EXPECT_NEAR(with, off, off * 0.03) << sz;
  }
}

TEST(Fig9Iommu, SmallReadsCollapsePastTlbReach) {
  // §6.5: 64 B reads drop by almost 70 % once the window exceeds 256 KB.
  const auto base = sys::nfp6000_bdw().config;
  const auto on = sys::with_iommu(base, true, 4096);
  const double off =
      bw_gbps(base, BenchKind::BwRd, 64, 16ull << 20, CacheState::HostWarm);
  const double with =
      bw_gbps(on, BenchKind::BwRd, 64, 16ull << 20, CacheState::HostWarm);
  const double drop = core::pct_change(off, with);
  EXPECT_LT(drop, -55.0);
  EXPECT_GT(drop, -80.0);
}

TEST(Fig9Iommu, MidSizeDropIsModerate) {
  const auto base = sys::nfp6000_bdw().config;
  const auto on = sys::with_iommu(base, true, 4096);
  const double off =
      bw_gbps(base, BenchKind::BwRd, 256, 16ull << 20, CacheState::HostWarm);
  const double with =
      bw_gbps(on, BenchKind::BwRd, 256, 16ull << 20, CacheState::HostWarm);
  const double drop = core::pct_change(off, with);
  EXPECT_LT(drop, -15.0);
  EXPECT_GT(drop, -45.0);
}

TEST(Fig9Iommu, NoChangeFor512BAndAbove) {
  const auto base = sys::nfp6000_bdw().config;
  const auto on = sys::with_iommu(base, true, 4096);
  const double off =
      bw_gbps(base, BenchKind::BwRd, 512, 16ull << 20, CacheState::HostWarm);
  const double with =
      bw_gbps(on, BenchKind::BwRd, 512, 16ull << 20, CacheState::HostWarm);
  EXPECT_NEAR(with, off, off * 0.03);
}

TEST(Fig9Iommu, WritesDropLessThanReads) {
  // §6.5: ~55 % drop for 64 B writes vs ~70 % for reads.
  const auto base = sys::nfp6000_bdw().config;
  const auto on = sys::with_iommu(base, true, 4096);
  const double wr_drop = core::pct_change(
      bw_gbps(base, BenchKind::BwWr, 64, 16ull << 20, CacheState::HostWarm),
      bw_gbps(on, BenchKind::BwWr, 64, 16ull << 20, CacheState::HostWarm));
  const double rd_drop = core::pct_change(
      bw_gbps(base, BenchKind::BwRd, 64, 16ull << 20, CacheState::HostWarm),
      bw_gbps(on, BenchKind::BwRd, 64, 16ull << 20, CacheState::HostWarm));
  EXPECT_LT(wr_drop, -35.0);
  EXPECT_GT(wr_drop, rd_drop);  // writes lose less
}

TEST(Fig9Iommu, TlbMissAddsAbout330nsLatency) {
  // §6.5: 64 B read latency rises from ~430 ns to ~760 ns under misses.
  const auto base = sys::nfp6000_bdw().config;
  const auto on = sys::with_iommu(base, true, 4096);
  sim::System off_sys(base);
  BenchParams p;
  p.kind = BenchKind::LatRd;
  p.transfer_size = 64;
  p.window_bytes = 16ull << 20;  // far beyond TLB reach
  p.cache_state = CacheState::HostWarm;
  p.use_cmd_if = true;
  p.iterations = 2000;
  auto off = core::run_latency_bench(off_sys, p);
  sim::System on_sys(on);
  auto with = core::run_latency_bench(on_sys, p);
  EXPECT_NEAR(with.summary.median_ns - off.summary.median_ns, 330.0, 40.0);
}

TEST(Fig9Iommu, SuperpagesRestoreThroughput) {
  // §7 recommendation: superpages collapse the IO-TLB footprint.
  const auto base = sys::nfp6000_bdw().config;
  const auto sp = sys::with_iommu(base, true, 2ull << 20);
  const double off =
      bw_gbps(base, BenchKind::BwRd, 64, 16ull << 20, CacheState::HostWarm);
  const double with_sp = bw_gbps(sp, BenchKind::BwRd, 64, 16ull << 20,
                                 CacheState::HostWarm, true, 2ull << 20);
  EXPECT_NEAR(with_sp, off, off * 0.05);
}

}  // namespace
}  // namespace pcieb
