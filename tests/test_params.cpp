#include "core/params.hpp"

#include <gtest/gtest.h>

namespace pcieb::core {
namespace {

TEST(BenchParamsTest, UnitRoundsUpToCacheLines) {
  BenchParams p;
  p.transfer_size = 64;
  p.offset = 0;
  EXPECT_EQ(p.unit_bytes(), 64u);
  p.offset = 1;
  EXPECT_EQ(p.unit_bytes(), 128u);
  p.transfer_size = 8;
  p.offset = 0;
  EXPECT_EQ(p.unit_bytes(), 64u);
  p.transfer_size = 65;
  EXPECT_EQ(p.unit_bytes(), 128u);
}

TEST(BenchParamsTest, UnitsDivideWindow) {
  BenchParams p;
  p.transfer_size = 64;
  p.window_bytes = 8192;
  EXPECT_EQ(p.units(), 128u);
  p.transfer_size = 100;  // unit 128
  EXPECT_EQ(p.units(), 64u);
}

TEST(BenchParamsTest, ValidationCatchesBadSettings) {
  BenchParams p;
  p.transfer_size = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = BenchParams{};
  p.offset = 64;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = BenchParams{};
  p.window_bytes = 32;  // smaller than one unit
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = BenchParams{};
  p.iterations = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = BenchParams{};
  p.page_bytes = 3000;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  EXPECT_NO_THROW(BenchParams{}.validate());
}

TEST(BenchParamsTest, KindPredicates) {
  EXPECT_TRUE(is_latency(BenchKind::LatRd));
  EXPECT_TRUE(is_latency(BenchKind::LatWrRd));
  EXPECT_FALSE(is_latency(BenchKind::BwRd));
  EXPECT_FALSE(is_latency(BenchKind::BwWr));
  EXPECT_FALSE(is_latency(BenchKind::BwRdWr));
}

TEST(BenchParamsTest, NamesMatchPaperLabels) {
  EXPECT_STREQ(to_string(BenchKind::LatRd), "LAT_RD");
  EXPECT_STREQ(to_string(BenchKind::LatWrRd), "LAT_WRRD");
  EXPECT_STREQ(to_string(BenchKind::BwRd), "BW_RD");
  EXPECT_STREQ(to_string(BenchKind::BwWr), "BW_WR");
  EXPECT_STREQ(to_string(BenchKind::BwRdWr), "BW_RDWR");
}

TEST(BenchParamsTest, DescribeIsInformative) {
  BenchParams p;
  p.kind = BenchKind::BwRd;
  p.transfer_size = 128;
  p.cache_state = CacheState::Thrash;
  const std::string d = p.describe();
  EXPECT_NE(d.find("BW_RD"), std::string::npos);
  EXPECT_NE(d.find("sz=128"), std::string::npos);
  EXPECT_NE(d.find("cold"), std::string::npos);
}

}  // namespace
}  // namespace pcieb::core
