#include "pcie/link_config.hpp"

#include <gtest/gtest.h>

namespace pcieb::proto {
namespace {

TEST(Generations, LaneRates) {
  EXPECT_DOUBLE_EQ(per_lane_gts(Generation::Gen1), 2.5);
  EXPECT_DOUBLE_EQ(per_lane_gts(Generation::Gen2), 5.0);
  EXPECT_DOUBLE_EQ(per_lane_gts(Generation::Gen3), 8.0);
  EXPECT_DOUBLE_EQ(per_lane_gts(Generation::Gen4), 16.0);
  EXPECT_DOUBLE_EQ(per_lane_gts(Generation::Gen5), 32.0);
}

TEST(Generations, EncodingEfficiency) {
  EXPECT_DOUBLE_EQ(encoding_efficiency(Generation::Gen1), 0.8);
  EXPECT_DOUBLE_EQ(encoding_efficiency(Generation::Gen2), 0.8);
  EXPECT_DOUBLE_EQ(encoding_efficiency(Generation::Gen3), 128.0 / 130.0);
}

TEST(Generations, Gen3LaneIsAbout7_87Gbps) {
  // §3: "each lane offers 8 GT/s using 128b/130b encoding, resulting in
  // 8 x 7.87 Gb/s = 62.96 Gb/s at the physical layer".
  EXPECT_NEAR(per_lane_gbps(Generation::Gen3), 7.87, 0.01);
}

TEST(LinkConfigTest, Gen3x8PhysicalRate) {
  const LinkConfig cfg = gen3_x8();
  EXPECT_NEAR(cfg.raw_gbps(), 62.96, 0.1);
}

TEST(LinkConfigTest, Gen3x8TlpLayerRateMatchesPaper) {
  // §3: "leaving around 57.88 Gb/s available at the TLP layer".
  const LinkConfig cfg = gen3_x8();
  EXPECT_NEAR(cfg.tlp_gbps(), 57.88, 0.15);
}

TEST(LinkConfigTest, DefaultsMatchPaperSetup) {
  const LinkConfig cfg = gen3_x8();
  EXPECT_EQ(cfg.mps, 256u);
  EXPECT_EQ(cfg.mrrs, 512u);
  EXPECT_EQ(cfg.rcb, 64u);
  EXPECT_TRUE(cfg.addr64);
  EXPECT_FALSE(cfg.ecrc);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(LinkConfigTest, Gen4DoublesGen3) {
  LinkConfig g3 = gen3_x8();
  LinkConfig g4 = g3;
  g4.gen = Generation::Gen4;
  EXPECT_NEAR(g4.raw_gbps(), 2.0 * g3.raw_gbps(), 1e-9);
}

TEST(LinkConfigTest, ValidationRejectsBadLanes) {
  LinkConfig cfg = gen3_x8();
  cfg.lanes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.lanes = 3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.lanes = 64;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(LinkConfigTest, ValidationRejectsBadMps) {
  LinkConfig cfg = gen3_x8();
  cfg.mps = 100;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.mps = 64;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.mps = 8192;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(LinkConfigTest, ValidationRejectsBadRcb) {
  LinkConfig cfg = gen3_x8();
  cfg.rcb = 32;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.rcb = 128;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(LinkConfigTest, ValidationRejectsBadDllpOverhead) {
  LinkConfig cfg = gen3_x8();
  cfg.dllp_overhead = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.dllp_overhead = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(LinkConfigTest, DescribeMentionsKeyFields) {
  const std::string d = gen3_x8().describe();
  EXPECT_NE(d.find("Gen 3"), std::string::npos);
  EXPECT_NE(d.find("x8"), std::string::npos);
  EXPECT_NE(d.find("MPS 256"), std::string::npos);
}

class LaneSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(LaneSweep, BandwidthScalesLinearlyInLanes) {
  LinkConfig cfg = gen3_x8();
  cfg.lanes = GetParam();
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_NEAR(cfg.raw_gbps(),
              per_lane_gbps(Generation::Gen3) * GetParam(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lanes, LaneSweep, ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace pcieb::proto
