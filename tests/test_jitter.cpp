#include "sim/jitter.hpp"

#include <gtest/gtest.h>

namespace pcieb::sim {
namespace {

TEST(SplicedDistributionTest, RejectsBadKnots) {
  using K = SplicedDistribution::Knot;
  EXPECT_THROW(SplicedDistribution({{0.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(SplicedDistribution({K{0.1, 0.0}, K{1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(SplicedDistribution({K{0.0, 0.0}, K{0.9, 1.0}}),
               std::invalid_argument);
  // Decreasing value
  EXPECT_THROW(SplicedDistribution({K{0.0, 5.0}, K{0.5, 1.0}, K{1.0, 6.0}}),
               std::invalid_argument);
  // Non-increasing quantile
  EXPECT_THROW(SplicedDistribution({K{0.0, 0.0}, K{0.5, 1.0}, K{0.5, 2.0},
                                    K{1.0, 3.0}}),
               std::invalid_argument);
}

TEST(SplicedDistributionTest, QuantileInterpolatesLinearly) {
  SplicedDistribution d({{0.0, 0.0}, {0.5, 100.0}, {1.0, 200.0}});
  EXPECT_DOUBLE_EQ(d.quantile_ns(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile_ns(0.25), 50.0);
  EXPECT_DOUBLE_EQ(d.quantile_ns(0.5), 100.0);
  EXPECT_DOUBLE_EQ(d.quantile_ns(0.75), 150.0);
  EXPECT_DOUBLE_EQ(d.quantile_ns(1.0), 200.0);
  EXPECT_DOUBLE_EQ(d.quantile_ns(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile_ns(2.0), 200.0);
}

TEST(SplicedDistributionTest, MeanOfUniformSegment) {
  SplicedDistribution d({{0.0, 0.0}, {1.0, 100.0}});
  EXPECT_DOUBLE_EQ(d.mean_ns(), 50.0);
}

TEST(SplicedDistributionTest, SamplesRespectBounds) {
  SplicedDistribution d({{0.0, 10.0}, {1.0, 20.0}});
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = d.sample_ns(rng);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 20.0);
  }
}

TEST(SplicedDistributionTest, EmpiricalQuantilesMatch) {
  SplicedDistribution d({{0.0, 0.0}, {0.5, 100.0}, {0.9, 500.0}, {1.0, 1000.0}});
  Xoshiro256 rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 200000; ++i) samples.push_back(d.sample_ns(rng));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 100.0, 5.0);
  EXPECT_NEAR(samples[static_cast<std::size_t>(samples.size() * 0.9)], 500.0,
              25.0);
}

TEST(JitterModelTest, NoneIsAlwaysZero) {
  auto m = JitterModel::none();
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.sample(rng), 0);
}

TEST(JitterModelTest, XeonE5IsNarrow) {
  // Fig 6 E5: 99.9 % of transactions within an 80 ns band of the minimum.
  auto m = JitterModel::xeon_e5();
  EXPECT_DOUBLE_EQ(m.dist.quantile_ns(0.0), 0.0);
  EXPECT_NEAR(m.dist.quantile_ns(0.5), 27.0, 1.0);
  EXPECT_LE(m.dist.quantile_ns(0.999), 80.0);
  EXPECT_LE(m.dist.quantile_ns(1.0), 430.0);
}

TEST(JitterModelTest, XeonE3HasHeavyTail) {
  // Fig 6 E3 anchors (delta above the 493 ns minimum): median +720,
  // p99 +5214, p99.9 +11494. The millisecond extreme tail is produced by
  // MemoryConfig::stall_interval events, not this distribution.
  auto m = JitterModel::xeon_e3();
  EXPECT_NEAR(m.dist.quantile_ns(0.5), 720.0, 5.0);
  EXPECT_NEAR(m.dist.quantile_ns(0.99), 5210.0, 30.0);
  EXPECT_NEAR(m.dist.quantile_ns(0.999), 11490.0, 60.0);
  EXPECT_GT(m.dist.quantile_ns(1.0), 20000.0);
}

TEST(JitterModelTest, E3MedianDominatesE5ByFarMoreThanTail) {
  // The paper's headline: E3 median is more than double the E5 median
  // while minima are comparable.
  auto e5 = JitterModel::xeon_e5();
  auto e3 = JitterModel::xeon_e3();
  EXPECT_GT(e3.dist.quantile_ns(0.5), 20.0 * e5.dist.quantile_ns(0.5));
}

}  // namespace
}  // namespace pcieb::sim
