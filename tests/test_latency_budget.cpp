#include "model/latency_budget.hpp"

#include <gtest/gtest.h>

namespace pcieb::model {
namespace {

TEST(InterPacketTime, Anchor128BAt40G) {
  // §2: "With 40 Gb/s Ethernet at line rate for 128 B packets, a new
  // packet needs to be received and sent around every 30 ns."
  EXPECT_NEAR(inter_packet_time_ns(40.0, 128), 30.4, 0.1);
}

TEST(InterPacketTime, MinimumFrameAt40G) {
  // 60 B frame + 24 B overhead = 84 B -> 16.8 ns at 40 Gb/s.
  EXPECT_NEAR(inter_packet_time_ns(40.0, 60), 16.8, 0.01);
}

TEST(InterPacketTime, InvalidArgumentsThrow) {
  EXPECT_THROW(inter_packet_time_ns(0.0, 128), std::invalid_argument);
  EXPECT_THROW(inter_packet_time_ns(40.0, 0), std::invalid_argument);
}

TEST(RequiredInflight, PaperAnchorThirtyDmas) {
  // §2: ~900 ns of PCIe latency at 30 ns inter-packet time means the NIC
  // "has to handle at least 30 concurrent DMAs in each direction".
  EXPECT_EQ(required_inflight_dmas(900.0, 40.0, 128), 30u);
}

TEST(RequiredInflight, Nfp6000HswWorstCase) {
  // §7: 560-666 ns to move 128 B; at 29.6 ns per packet that is ~23
  // in-flight DMAs at the upper bound.
  EXPECT_EQ(required_inflight_dmas(666.0, 40.0, 128), 22u);
}

TEST(RequiredInflight, AtLeastOne) {
  EXPECT_EQ(required_inflight_dmas(1.0, 40.0, 1500), 1u);
}

TEST(RequiredInflight, ScalesWithWireRate) {
  const unsigned at40 = required_inflight_dmas(900.0, 40.0, 128);
  const unsigned at100 = required_inflight_dmas(900.0, 100.0, 128);
  EXPECT_GT(at100, 2 * at40);  // 2.5x the rate, same latency
}

TEST(RequiredInflight, IommuMissHeadroom) {
  // §7: with the IOMMU on, the engines must also cover ~330 ns of
  // occasional TLB-miss latency.
  const unsigned base = required_inflight_dmas(666.0, 40.0, 128);
  const unsigned with_miss = required_inflight_dmas(666.0 + 330.0, 40.0, 128);
  EXPECT_GT(with_miss, base);
  EXPECT_EQ(with_miss, 33u);
}

TEST(CycleBudget, MatchesHandComputation) {
  // 1.2 GHz, 1 engine, 128 B at 40G: 30.4 ns -> ~36.5 cycles per DMA.
  EXPECT_NEAR(cycle_budget_per_dma(40.0, 128, 1, 1.2), 36.48, 0.05);
  // Spreading over 4 engines quadruples the budget.
  EXPECT_NEAR(cycle_budget_per_dma(40.0, 128, 4, 1.2), 4 * 36.48, 0.2);
}

TEST(CycleBudget, InvalidArgumentsThrow) {
  EXPECT_THROW(cycle_budget_per_dma(40.0, 128, 0, 1.2), std::invalid_argument);
  EXPECT_THROW(cycle_budget_per_dma(40.0, 128, 1, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace pcieb::model
