// Thread-parallel sweep determinism — the ISSUE's golden contract: running
// chaos campaigns and suite experiments on the in-process work-stealing
// pool must produce output byte-identical to a serial run and to the
// fork-isolated pool, regardless of completion order.
//
// Also unit-tests the exec::ThreadPool itself: every index runs exactly
// once, exceptions propagate (lowest index wins), and thread counts
// degenerate gracefully.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/chaos.hpp"
#include "core/multi_runner.hpp"
#include "core/suite.hpp"
#include "exec/journal.hpp"
#include "exec/thread_pool.hpp"

namespace fs = std::filesystem;
using namespace pcieb;

namespace {

struct TempDir {
  std::string path = exec::make_temp_dir("pcieb-thread-sweep-");
  ~TempDir() { fs::remove_all(path); }
};

/// Canonical transcript of a campaign as the observer sees it — any
/// divergence in trial order, content or count shows up here.
std::string campaign_transcript(const check::ChaosConfig& cfg,
                                check::CampaignResult& result_out) {
  std::ostringstream os;
  result_out = check::run_campaign(
      cfg, [&os](const check::TrialSpec& spec, const check::TrialOutcome& out) {
        os << spec.describe() << "\n" << out.summary() << "\n";
      });
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// exec::ThreadPool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  std::vector<std::atomic<int>> hits(997);  // prime: uneven deal
  pool.parallel_indexed(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroThreadsResolvesToHardwareConcurrency) {
  exec::ThreadPool pool(0);
  EXPECT_GE(pool.threads(), 1u);
  std::atomic<int> ran{0};
  pool.parallel_indexed(3, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, MoreThreadsThanTasksAndEmptyRangesAreFine) {
  exec::ThreadPool pool(8);
  std::atomic<int> ran{0};
  pool.parallel_indexed(2, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 2);
  pool.parallel_indexed(0, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, LowestIndexExceptionPropagatesAfterAllTasksFinish) {
  exec::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  try {
    pool.parallel_indexed(hits.size(), [&](std::size_t i) {
      ++hits[i];
      if (i == 7 || i == 40) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "exception did not propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7");  // lowest failing index wins
  }
  // No early cancellation: every task still ran.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---------------------------------------------------------------------------
// Chaos campaigns: threads=N byte-identical to serial.

TEST(ThreadSweep, CleanCampaignByteIdenticalToSerial) {
  check::ChaosConfig serial_cfg;
  serial_cfg.trials = 12;
  serial_cfg.iterations = 120;
  serial_cfg.shrink = false;

  check::CampaignResult serial_res;
  const std::string serial = campaign_transcript(serial_cfg, serial_res);
  ASSERT_TRUE(serial_res.ok());
  EXPECT_EQ(serial_res.trials_run, 12u);

  for (const std::size_t threads : {2u, 8u}) {
    auto cfg = serial_cfg;
    cfg.threads = threads;
    check::CampaignResult res;
    const std::string threaded = campaign_transcript(cfg, res);
    EXPECT_EQ(threaded, serial) << "threads=" << threads;
    EXPECT_EQ(res.trials_run, serial_res.trials_run);
    EXPECT_EQ(res.failures, serial_res.failures);
  }
}

TEST(ThreadSweep, FailingCampaignStopsAtSameTrialAsSerial) {
  // The seeded credit-leak bug makes some trial fail; the threaded run
  // must report the identical first failure and observer sequence even
  // though workers past the failing index may already have executed.
  check::ChaosConfig serial_cfg;
  serial_cfg.trials = 40;
  serial_cfg.iterations = 2000;
  serial_cfg.seed_credit_leak_bug = true;
  serial_cfg.shrink = false;

  check::CampaignResult serial_res;
  const std::string serial = campaign_transcript(serial_cfg, serial_res);
  ASSERT_FALSE(serial_res.ok()) << "seeded bug not caught; test is vacuous";
  ASSERT_TRUE(serial_res.first_failure.has_value());

  auto cfg = serial_cfg;
  cfg.threads = 8;
  check::CampaignResult res;
  const std::string threaded = campaign_transcript(cfg, res);
  EXPECT_EQ(threaded, serial);
  EXPECT_EQ(res.trials_run, serial_res.trials_run);
  EXPECT_EQ(res.failures, serial_res.failures);
  ASSERT_TRUE(res.first_failure.has_value());
  EXPECT_EQ(res.first_failure->describe(),
            serial_res.first_failure->describe());
  EXPECT_EQ(res.first_failure->repro_command(),
            serial_res.first_failure->repro_command());
}

// ---------------------------------------------------------------------------
// Suite experiments: threads=N byte-identical to the fork-isolated pool.

TEST(ThreadSweep, SuiteThreadedMatchesForkIsolatedByteForByte) {
  TempDir fork_dir, thread_dir;
  const auto suite = core::Suite::standard("NFP6000-HSW");
  const std::string filter = "LAT_RD/8/";  // cold + warm: two experiments

  core::IsolatedRunConfig fork_cfg;
  fork_cfg.pool.jobs = 2;
  fork_cfg.journal_dir = fork_dir.path;
  const auto forked = core::MultiRunner(suite, fork_cfg).run(filter);
  ASSERT_EQ(forked.records.size(), 2u);

  core::IsolatedRunConfig thr_cfg;
  thr_cfg.threads = 8;
  thr_cfg.journal_dir = thread_dir.path;
  const auto threaded = core::MultiRunner(suite, thr_cfg).run(filter);
  ASSERT_EQ(threaded.records.size(), 2u);
  EXPECT_TRUE(threaded.quarantined.empty());

  EXPECT_EQ(core::summarize(threaded.records), core::summarize(forked.records));
  core::write_csv(forked.records, fork_dir.path + "/fork.csv");
  core::write_csv(threaded.records, fork_dir.path + "/threads.csv");
  EXPECT_EQ(exec::read_file(fork_dir.path + "/fork.csv"),
            exec::read_file(fork_dir.path + "/threads.csv"));
}

TEST(ThreadSweep, ThreadedSuiteJournalResumes) {
  // The threaded pool writes the same journal format, so a run cut short
  // resumes — including resuming into a fork-isolated run.
  TempDir tmp;
  const auto suite = core::Suite::standard("NFP6000-HSW");
  const std::string filter = "LAT_RD/8/";

  core::IsolatedRunConfig cut;
  cut.threads = 2;
  cut.journal_dir = tmp.path;
  cut.stop_after = 1;
  const auto partial = core::MultiRunner(suite, cut).run(filter);
  EXPECT_EQ(partial.records.size(), 1u);

  cut.stop_after = 0;
  cut.resume = true;
  cut.threads = 0;  // finish under the fork-isolated pool
  const auto resumed = core::MultiRunner(suite, cut).run(filter);
  EXPECT_EQ(resumed.resumed, 1u);
  ASSERT_EQ(resumed.records.size(), 2u);

  TempDir ref_dir;
  core::IsolatedRunConfig full;
  full.threads = 2;
  full.journal_dir = ref_dir.path;
  const auto ref = core::MultiRunner(suite, full).run(filter);
  EXPECT_EQ(core::summarize(resumed.records), core::summarize(ref.records));
}
