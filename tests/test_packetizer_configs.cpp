// Packetizer properties across negotiated link configurations — MPS,
// MRRS, RCB, 32/64-bit addressing and ECRC all change the byte
// accounting; the §3 equations must generalize to every combination.
#include <gtest/gtest.h>

#include <numeric>

#include "pcie/bandwidth.hpp"
#include "pcie/packetizer.hpp"

namespace pcieb::proto {
namespace {

struct ConfigCase {
  unsigned mps;
  unsigned mrrs;
  unsigned rcb;
  bool addr64;
  bool ecrc;
};

LinkConfig make(const ConfigCase& c) {
  LinkConfig cfg = gen3_x8();
  cfg.mps = c.mps;
  cfg.mrrs = c.mrrs;
  cfg.rcb = c.rcb;
  cfg.addr64 = c.addr64;
  cfg.ecrc = c.ecrc;
  cfg.validate();
  return cfg;
}

class ConfigSweep : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ConfigSweep, WritesMatchEquationOne) {
  const LinkConfig cfg = make(GetParam());
  const unsigned hdr = overhead_bytes(TlpType::MemWr, cfg);
  for (std::uint32_t sz : {1u, 64u, 255u, 256u, 1000u, 4096u, 9000u}) {
    const auto b = dma_write_bytes(cfg, 0, sz);
    EXPECT_EQ(b.upstream, ((sz + cfg.mps - 1) / cfg.mps) * hdr + sz)
        << "sz=" << sz;
  }
}

TEST_P(ConfigSweep, ReadsMatchEquationsTwoAndThree) {
  const LinkConfig cfg = make(GetParam());
  const unsigned rd_hdr = overhead_bytes(TlpType::MemRd, cfg);
  const unsigned cpl_hdr = overhead_bytes(TlpType::CplD, cfg);
  for (std::uint32_t sz : {64u, 500u, 512u, 2048u, 8192u}) {
    const auto b = dma_read_bytes(cfg, 0, sz);
    EXPECT_EQ(b.upstream, ((sz + cfg.mrrs - 1) / cfg.mrrs) * rd_hdr) << sz;
    // Aligned reads: ceil(chunk/MPS) completions per MRRS chunk.
    std::uint64_t cpls = 0;
    for (std::uint32_t left = sz; left > 0;) {
      const std::uint32_t chunk = std::min(left, cfg.mrrs);
      cpls += (chunk + cfg.mps - 1) / cfg.mps;
      left -= chunk;
    }
    EXPECT_EQ(b.downstream, cpls * cpl_hdr + sz) << sz;
  }
}

TEST_P(ConfigSweep, SegmentationConservesBytes) {
  const LinkConfig cfg = make(GetParam());
  for (std::uint64_t addr : {0ull, 7ull, 63ull, 4093ull}) {
    for (std::uint32_t sz : {1u, 64u, 513u, 4097u}) {
      std::uint64_t wr = 0;
      for (const auto& t : segment_write(cfg, addr, sz)) wr += t.payload;
      EXPECT_EQ(wr, sz);
      std::uint64_t rd = 0;
      for (const auto& t : segment_read_requests(cfg, addr, sz)) rd += t.read_len;
      EXPECT_EQ(rd, sz);
      std::uint64_t cpl = 0;
      for (const auto& t : segment_completions(cfg, addr, sz)) cpl += t.payload;
      EXPECT_EQ(cpl, sz);
    }
  }
}

TEST_P(ConfigSweep, CompletionsRespectRcbAndMps) {
  const LinkConfig cfg = make(GetParam());
  for (std::uint64_t addr : {0ull, 4ull, 60ull, 100ull}) {
    const auto cpls = segment_completions(cfg, addr, 4096);
    for (std::size_t i = 0; i < cpls.size(); ++i) {
      EXPECT_LE(cpls[i].payload, cfg.mps);
      if (i + 1 < cpls.size()) {
        EXPECT_EQ((cpls[i].addr + cpls[i].payload) % cfg.rcb, 0u)
            << "addr=" << addr << " i=" << i;
      }
    }
  }
}

TEST_P(ConfigSweep, EffectiveBandwidthOrderingHolds) {
  const LinkConfig cfg = make(GetParam());
  for (std::uint32_t sz : {64u, 256u, 1024u}) {
    const double rdwr = effective_rdwr_gbps(cfg, sz);
    EXPECT_LT(rdwr, effective_write_gbps(cfg, sz));
    EXPECT_LE(rdwr, effective_read_gbps(cfg, sz) + 1e-9);
    EXPECT_LT(effective_write_gbps(cfg, sz), cfg.tlp_gbps());
  }
}

TEST_P(ConfigSweep, EcrcAndAddr32ShiftGoodputTheRightWay) {
  ConfigCase base_case = GetParam();
  base_case.ecrc = false;
  base_case.addr64 = true;
  const LinkConfig base = make(base_case);

  ConfigCase with_ecrc = base_case;
  with_ecrc.ecrc = true;
  EXPECT_LT(effective_write_gbps(make(with_ecrc), 256),
            effective_write_gbps(base, 256));

  ConfigCase addr32 = base_case;
  addr32.addr64 = false;
  EXPECT_GT(effective_write_gbps(make(addr32), 256),
            effective_write_gbps(base, 256));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConfigSweep,
    ::testing::Values(ConfigCase{128, 128, 64, true, false},
                      ConfigCase{128, 512, 64, true, false},
                      ConfigCase{256, 512, 64, true, false},   // the paper's
                      ConfigCase{256, 512, 128, true, false},
                      ConfigCase{256, 4096, 64, true, false},
                      ConfigCase{512, 512, 64, false, false},
                      ConfigCase{512, 1024, 128, true, true},
                      ConfigCase{1024, 4096, 128, false, true},
                      ConfigCase{4096, 4096, 128, true, false}));

}  // namespace
}  // namespace pcieb::proto
