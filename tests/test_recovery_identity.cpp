// Escalation determinism: a recovery-armed chaos campaign produces the
// same per-trial ladder outcomes — transition digests, final states, and
// the campaign summary built from them — whether trials run serially, on
// the in-process thread pool, in fork-isolated workers (any --jobs), or
// resumed from a journal cut mid-campaign. The digests are journal-
// carried, so a resumed campaign never re-derives them.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "check/campaign_exec.hpp"
#include "check/chaos.hpp"
#include "exec/journal.hpp"
#include "exec/outcome.hpp"
#include "fault/recovery.hpp"

namespace fs = std::filesystem;
using namespace pcieb;

namespace {

struct TempDir {
  std::string path = exec::make_temp_dir("pcieb-recovery-id-");
  ~TempDir() { fs::remove_all(path); }
};

check::ChaosConfig recovery_campaign() {
  check::ChaosConfig cfg;
  cfg.trials = 12;
  cfg.iterations = 400;
  cfg.shrink = false;
  cfg.recovery = fault::parse_recovery_policy("default");
  cfg.monitors_throw = true;
  return cfg;
}

using Outcomes = std::vector<std::pair<std::string, std::string>>;

/// (state, digest) per trial, in index order, via the campaign observer.
Outcomes collect(check::ChaosConfig cfg) {
  Outcomes out;
  check::run_campaign(cfg, [&](const check::TrialSpec&,
                               const check::TrialOutcome& o) {
    out.emplace_back(o.recovery_state, o.recovery_digest);
  });
  return out;
}

}  // namespace

TEST(RecoveryIdentity, ThreadedCampaignMatchesSerialTrialForTrial) {
  const Outcomes serial = collect(recovery_campaign());
  ASSERT_EQ(serial.size(), 12u);
  // The campaign must actually exercise the ladder for this to mean
  // anything.
  std::size_t fired = 0;
  for (const auto& [state, digest] : serial) {
    EXPECT_FALSE(state.empty());
    if (!digest.empty()) ++fired;
  }
  ASSERT_GT(fired, 0u) << "no trial tripped the ladder; grow the campaign";

  auto threaded_cfg = recovery_campaign();
  threaded_cfg.threads = 8;
  EXPECT_EQ(collect(threaded_cfg), serial);
}

TEST(RecoveryIdentity, CampaignTalliesAreDeterministicAcrossRepeats) {
  const auto a = check::run_campaign(recovery_campaign());
  const auto b = check::run_campaign(recovery_campaign());
  EXPECT_EQ(a.trials_recovered, b.trials_recovered);
  EXPECT_EQ(a.trials_quarantined, b.trials_quarantined);
  EXPECT_GT(a.trials_recovered, 0u);
}

TEST(RecoveryIdentity, ForkIsolatedAndResumedCampaignsMatchByteForByte) {
  // Reference: uninterrupted fork-isolated run on several workers.
  TempDir ref_dir, cut_dir;
  check::ExecCampaignConfig ref_cfg;
  ref_cfg.chaos = recovery_campaign();
  ref_cfg.journal_dir = ref_dir.path;
  ref_cfg.pool.jobs = 3;
  ref_cfg.pool.backoff.initial_seconds = 0.01;
  ref_cfg.pool.backoff.cap_seconds = 0.02;
  const auto ref = check::run_campaign_isolated(ref_cfg);
  ASSERT_EQ(ref.records.size(), 12u);
  EXPECT_EQ(ref.violation, 0u);
  EXPECT_GT(ref.trials_recovered, 0u);

  // The worker outcomes agree with the in-process campaign's.
  const Outcomes in_process = collect(recovery_campaign());
  for (std::size_t i = 0; i < ref.records.size(); ++i) {
    EXPECT_EQ(ref.records[i].recovery_state, in_process[i].first) << i;
    EXPECT_EQ(ref.records[i].recovery, in_process[i].second) << i;
  }

  // A campaign killed mid-run and resumed reproduces the canonical
  // summary and CSV byte for byte — recovery columns included, read
  // back from the journal rather than re-simulated.
  auto cut = ref_cfg;
  cut.journal_dir = cut_dir.path;
  cut.pool.jobs = 1;
  cut.stop_after = 5;
  const auto partial = check::run_campaign_isolated(cut);
  EXPECT_EQ(partial.records.size(), 5u);

  cut.stop_after = 0;
  cut.resume = true;
  const auto resumed = check::run_campaign_isolated(cut);
  EXPECT_EQ(resumed.resumed, 5u);
  EXPECT_EQ(resumed.summary_text(cut.chaos), ref.summary_text(ref_cfg.chaos));
  EXPECT_EQ(resumed.trials_recovered, ref.trials_recovered);
  EXPECT_EQ(resumed.trials_quarantined, ref.trials_quarantined);

  const std::string csv_ref = ref_dir.path + "/ref.csv";
  const std::string csv_res = ref_dir.path + "/resumed.csv";
  ref.write_csv(csv_ref);
  resumed.write_csv(csv_res);
  EXPECT_EQ(exec::read_file(csv_ref), exec::read_file(csv_res));
}

TEST(RecoveryIdentity, ResumeRejectsPolicyMismatch) {
  // The journal meta pins the recovery policy: resuming a recovery-armed
  // journal with a different (or no) policy must refuse rather than mix
  // outcomes from two different ladders.
  TempDir tmp;
  check::ExecCampaignConfig cfg;
  cfg.chaos = recovery_campaign();
  cfg.chaos.trials = 3;
  cfg.journal_dir = tmp.path;
  check::run_campaign_isolated(cfg);

  auto other = cfg;
  other.resume = true;
  other.chaos.recovery = fault::parse_recovery_policy("aggressive");
  EXPECT_THROW(check::run_campaign_isolated(other), exec::InfraError);
  other.chaos.recovery = fault::RecoveryPolicy{};
  EXPECT_THROW(check::run_campaign_isolated(other), exec::InfraError);
}

TEST(RecoveryIdentity, TrialRecordRoundTripsRecoveryFields) {
  check::TrialRecord rec;
  rec.index = 4;
  rec.status = check::TrialRecord::Status::Ok;
  rec.spec = "trial 4: X BW_WR size=256";
  rec.recovery = "10:operational>contained:fatal;20:contained>resetting:hot-reset";
  rec.recovery_state = "resetting";
  const auto back = check::TrialRecord::deserialize(rec.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->recovery, rec.recovery);
  EXPECT_EQ(back->recovery_state, rec.recovery_state);

  // Records without the fields (pre-recovery journals) still parse.
  check::TrialRecord bare;
  bare.index = 1;
  bare.spec = "trial 1: X";
  const auto old = check::TrialRecord::deserialize(bare.serialize());
  ASSERT_TRUE(old.has_value());
  EXPECT_TRUE(old->recovery.empty());
  EXPECT_TRUE(old->recovery_state.empty());
}
