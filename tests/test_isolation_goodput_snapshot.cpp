// Tier-2 snapshot: the SR-IOV isolation ablation sweep
// (bench/isolation_sweep.hpp, shared with the ablation_isolation binary)
// must reproduce the committed CSV byte-for-byte. The tenant fabric,
// fault injection and recovery are deterministic, so any drift is a
// semantic change to the isolation machinery — this makes such a change
// a conscious decision (regenerate bench/expected/isolation_goodput.csv
// by running ./build/bench/ablation_isolation with the path as argument)
// rather than an accident. The isolation=armed rows pin the containment
// contract: the victim columns are identical whether the attacker's
// fault plan is "none" or a drop storm — the same differential identity
// the tenant chaos campaign verifies per-trial.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "isolation_sweep.hpp"

namespace pcieb {
namespace {

std::string load_expected() {
  const std::string path =
      std::string(PCIEB_SOURCE_DIR) + "/bench/expected/isolation_goodput.csv";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(IsolationGoodputSnapshotTest, SweepMatchesCommittedCsv) {
  const std::string expected = load_expected();
  ASSERT_FALSE(expected.empty());
  const std::string actual =
      bench::isolation_sweep_csv(bench::run_isolation_sweep());
  // Line-by-line first, so a mismatch names the offending sweep point.
  std::istringstream es(expected), as(actual);
  std::string eline, aline;
  std::size_t n = 0;
  while (std::getline(es, eline)) {
    ASSERT_TRUE(std::getline(as, aline)) << "row " << n << " missing";
    EXPECT_EQ(aline, eline) << "row " << n;
    ++n;
  }
  EXPECT_FALSE(std::getline(as, aline)) << "extra row: " << aline;
  EXPECT_EQ(actual, expected);
}

// The armed rows' containment contract, asserted structurally (not just
// against the snapshot): every victim column is invariant across the
// attacker's fault plans when all isolation knobs are on.
TEST(IsolationGoodputSnapshotTest, ArmedVictimColumnsInvariant) {
  const auto quiet = bench::run_isolation_sweep_point("armed", "none");
  const auto storm =
      bench::run_isolation_sweep_point("armed", "drop@every=15,dir=up,vf=0");
  EXPECT_EQ(storm.victim_p50_ps, quiet.victim_p50_ps);
  EXPECT_EQ(storm.victim_p99_ps, quiet.victim_p99_ps);
  EXPECT_EQ(storm.victim_payload, quiet.victim_payload);
  EXPECT_EQ(storm.victim_lost, quiet.victim_lost);
  EXPECT_EQ(storm.victim_elapsed_ps, quiet.victim_elapsed_ps);
  // The attacker, meanwhile, really was under attack.
  EXPECT_GT(storm.attacker_lost, 0u);
  EXPECT_GT(storm.injected, 0u);
}

}  // namespace
}  // namespace pcieb
