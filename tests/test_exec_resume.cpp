// Crash-safe campaign execution end to end: quarantine of crashing,
// hanging and OOM'ing trials (the ISSUE's acceptance scenario), journal
// resume producing byte-identical canonical output, and process-isolated
// Suite execution through core::MultiRunner.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "check/campaign_exec.hpp"
#include "core/multi_runner.hpp"
#include "core/suite.hpp"
#include "exec/crash_hook.hpp"
#include "exec/journal.hpp"
#include "exec/worker.hpp"

namespace fs = std::filesystem;
using namespace pcieb;

namespace {

struct TempDir {
  std::string path = exec::make_temp_dir("pcieb-resume-test-");
  ~TempDir() { fs::remove_all(path); }
};

/// Arms PCIEB_CRASH_HOOK for the scope; workers read it after fork.
struct HookGuard {
  explicit HookGuard(const char* spec) {
    ::setenv(exec::CrashHook::kEnvVar, spec, 1);
  }
  ~HookGuard() { ::unsetenv(exec::CrashHook::kEnvVar); }
};

check::ExecCampaignConfig small_campaign(std::size_t trials) {
  check::ExecCampaignConfig cfg;
  cfg.chaos.trials = trials;
  cfg.chaos.iterations = 60;
  cfg.chaos.shrink = false;
  cfg.pool.jobs = 2;
  cfg.pool.backoff.initial_seconds = 0.01;
  cfg.pool.backoff.cap_seconds = 0.02;
  return cfg;
}

}  // namespace

TEST(TrialRecord, SerializeRoundTrips) {
  check::TrialRecord rec;
  rec.index = 12;
  rec.status = check::TrialRecord::Status::Violation;
  rec.classification = "ok";
  rec.attempts = 3;
  rec.violations = 7;
  rec.first_violation = "credit leak:\nposted header";  // embedded newline
  rec.error = "";
  rec.spec = "trial 12: X BW_RD size=64";
  rec.repro = "pciebench run --system X";
  const auto back = check::TrialRecord::deserialize(rec.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->index, rec.index);
  EXPECT_EQ(back->status, rec.status);
  EXPECT_EQ(back->classification, rec.classification);
  EXPECT_EQ(back->attempts, rec.attempts);
  EXPECT_EQ(back->violations, rec.violations);
  EXPECT_EQ(back->first_violation, rec.first_violation);
  EXPECT_EQ(back->spec, rec.spec);
  EXPECT_EQ(back->repro, rec.repro);
  EXPECT_TRUE(back->resumed);
  EXPECT_FALSE(check::TrialRecord::deserialize("not a record").has_value());
}

// The ISSUE's acceptance scenario: a campaign whose trials segfault, hang
// and exceed the RSS budget runs to completion, quarantines all three
// with structured artifacts, and completes the healthy trials.
TEST(ExecCampaign, QuarantinesCrashHangAndOomTrials) {
  TempDir tmp;
  HookGuard hook("segv@1;hang@2;oom@3");
  auto cfg = small_campaign(5);
  cfg.journal_dir = tmp.path;
  cfg.pool.max_retries = 0;
  cfg.pool.limits.wall_seconds = 5.0;
  cfg.pool.limits.rss_bytes = exec::own_rss_bytes() + (128ull << 20);

  const auto res = check::run_campaign_isolated(cfg);
  ASSERT_EQ(res.records.size(), 5u);
  EXPECT_EQ(res.quarantined, 3u);
  EXPECT_EQ(res.ok + res.violation, 2u);
  EXPECT_EQ(res.records[1].classification, "signal(SIGSEGV)");
  EXPECT_EQ(res.records[2].classification, "timeout");
  EXPECT_EQ(res.records[3].classification, "oom");

  for (int i = 1; i <= 3; ++i) {
    const std::string path =
        res.artifacts_dir + "/trial-" + std::to_string(i) + ".txt";
    ASSERT_TRUE(fs::exists(path)) << path;
    const std::string text = exec::read_file(path);
    EXPECT_NE(text.find("status: quarantined"), std::string::npos);
    EXPECT_NE(text.find("classification: "), std::string::npos);
    EXPECT_NE(text.find("pciebench run --system"), std::string::npos);
  }

  // Resume with the hook disarmed: every trial — including the
  // quarantined ones — is already journaled, so nothing re-runs.
  ::unsetenv(exec::CrashHook::kEnvVar);
  auto again = cfg;
  again.resume = true;
  const auto res2 = check::run_campaign_isolated(again);
  EXPECT_EQ(res2.resumed, 5u);
  EXPECT_EQ(res2.quarantined, 3u);
  EXPECT_EQ(res2.summary_text(again.chaos), res.summary_text(cfg.chaos));
}

// An interrupted campaign resumed from its journal must reproduce the
// uninterrupted run's canonical summary and CSV byte for byte.
TEST(ExecCampaign, ResumeIsByteIdenticalToUninterrupted) {
  TempDir full_dir, cut_dir;
  auto full = small_campaign(6);
  full.journal_dir = full_dir.path;
  const auto ref = check::run_campaign_isolated(full);
  ASSERT_EQ(ref.records.size(), 6u);

  auto cut = small_campaign(6);
  cut.journal_dir = cut_dir.path;
  cut.stop_after = 3;  // simulate a SIGKILL mid-campaign
  const auto partial = check::run_campaign_isolated(cut);
  EXPECT_EQ(partial.records.size(), 3u);

  cut.stop_after = 0;
  cut.resume = true;
  const auto resumed = check::run_campaign_isolated(cut);
  EXPECT_EQ(resumed.resumed, 3u);
  EXPECT_EQ(resumed.summary_text(cut.chaos), ref.summary_text(full.chaos));

  const std::string csv_ref = full_dir.path + "/ref.csv";
  const std::string csv_res = full_dir.path + "/resumed.csv";
  ref.write_csv(csv_ref);
  resumed.write_csv(csv_res);
  EXPECT_EQ(exec::read_file(csv_ref), exec::read_file(csv_res));
}

TEST(ExecCampaign, ResumeRejectsForeignJournal) {
  TempDir tmp;
  auto cfg = small_campaign(2);
  cfg.journal_dir = tmp.path;
  check::run_campaign_isolated(cfg);
  auto other = cfg;
  other.resume = true;
  other.chaos.master_seed ^= 1;  // a different campaign entirely
  EXPECT_THROW(check::run_campaign_isolated(other), exec::InfraError);
}

// Quarantined trials are minimized in isolated workers; the enriched
// artifact carries the shrunk one-line repro.
TEST(ExecCampaign, ShrinksQuarantinedTrialInWorkers) {
  TempDir tmp;
  HookGuard hook("segv@1");
  auto cfg = small_campaign(2);
  cfg.journal_dir = tmp.path;
  cfg.pool.jobs = 1;
  cfg.pool.max_retries = 0;
  cfg.chaos.shrink = true;
  cfg.quarantine_shrink_budget = 6;

  const auto res = check::run_campaign_isolated(cfg);
  EXPECT_EQ(res.quarantined, 1u);
  const std::string text =
      exec::read_file(res.artifacts_dir + "/trial-1.txt");
  EXPECT_NE(text.find("shrunk repro ("), std::string::npos);
  EXPECT_NE(text.find("--faults"), std::string::npos);
}

TEST(MultiRunner, ResumeReproducesUninterruptedSuiteOutput) {
  TempDir full_dir, cut_dir;
  const auto suite = core::Suite::standard("NFP6000-HSW");
  const std::string filter = "LAT_RD/8/";  // cold + warm: two experiments

  core::IsolatedRunConfig full;
  full.pool.jobs = 2;
  full.journal_dir = full_dir.path;
  const auto ref = core::MultiRunner(suite, full).run(filter);
  ASSERT_EQ(ref.records.size(), 2u);
  EXPECT_TRUE(ref.quarantined.empty());

  core::IsolatedRunConfig cut;
  cut.pool.jobs = 1;
  cut.journal_dir = cut_dir.path;
  cut.stop_after = 1;  // killed after the first experiment committed
  const auto partial = core::MultiRunner(suite, cut).run(filter);
  EXPECT_EQ(partial.records.size(), 1u);

  cut.stop_after = 0;
  cut.resume = true;
  const auto resumed = core::MultiRunner(suite, cut).run(filter);
  EXPECT_EQ(resumed.resumed, 1u);
  ASSERT_EQ(resumed.records.size(), 2u);
  EXPECT_EQ(core::summarize(resumed.records), core::summarize(ref.records));
  core::write_csv(ref.records, full_dir.path + "/ref.csv");
  core::write_csv(resumed.records, full_dir.path + "/resumed.csv");
  EXPECT_EQ(exec::read_file(full_dir.path + "/ref.csv"),
            exec::read_file(full_dir.path + "/resumed.csv"));
}

// A quarantined experiment produces an artifact but no journal record, so
// a resumed suite gives it another chance instead of skipping it.
TEST(MultiRunner, QuarantinedExperimentRerunsOnResume) {
  TempDir tmp;
  const auto suite = core::Suite::standard("NFP6000-HSW");
  const std::string filter = "LAT_RD/8/cold";  // exactly one experiment

  core::IsolatedRunConfig cfg;
  cfg.journal_dir = tmp.path;
  cfg.pool.max_retries = 0;
  cfg.pool.backoff.initial_seconds = 0.01;

  {
    HookGuard hook("segv@*");
    const auto res = core::MultiRunner(suite, cfg).run(filter);
    EXPECT_TRUE(res.records.empty());
    ASSERT_EQ(res.quarantined.size(), 1u);
    EXPECT_EQ(res.quarantined[0], "LAT_RD/8/cold");
    const std::string artifact =
        res.artifacts_dir + "/LAT_RD_8_cold.txt";
    ASSERT_TRUE(fs::exists(artifact));
    const std::string text = exec::read_file(artifact);
    EXPECT_NE(text.find("signal(SIGSEGV)"), std::string::npos);
    EXPECT_NE(text.find("pciebench run --system NFP6000-HSW"),
              std::string::npos);
  }

  cfg.resume = true;  // hook disarmed: the re-run now succeeds
  const auto res2 = core::MultiRunner(suite, cfg).run(filter);
  EXPECT_EQ(res2.resumed, 0u);
  ASSERT_EQ(res2.records.size(), 1u);
  EXPECT_TRUE(res2.quarantined.empty());
}
