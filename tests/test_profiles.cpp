#include "sysconfig/profiles.hpp"

#include <gtest/gtest.h>

namespace pcieb::sys {
namespace {

TEST(ProfilesTest, AllSixTable1SystemsExist) {
  const auto& all = all_profiles();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_NO_THROW(profile_by_name("NFP6000-BDW"));
  EXPECT_NO_THROW(profile_by_name("NetFPGA-HSW"));
  EXPECT_NO_THROW(profile_by_name("NFP6000-HSW"));
  EXPECT_NO_THROW(profile_by_name("NFP6000-HSW-E3"));
  EXPECT_NO_THROW(profile_by_name("NFP6000-IB"));
  EXPECT_NO_THROW(profile_by_name("NFP6000-SNB"));
}

TEST(ProfilesTest, UnknownNameThrows) {
  EXPECT_THROW(profile_by_name("NFP6000-SKL"), std::out_of_range);
}

TEST(ProfilesTest, LlcSizesMatchTable1) {
  // "All systems have 15MB of LLC, except NFP6000-BDW, which has 25MB."
  for (const auto& p : all_profiles()) {
    const std::uint64_t expect =
        p.name == "NFP6000-BDW" ? 25ull << 20 : 15ull << 20;
    EXPECT_EQ(p.config.cache.size_bytes, expect) << p.name;
  }
}

TEST(ProfilesTest, NumaArityMatchesTable1) {
  EXPECT_EQ(profile_by_name("NFP6000-BDW").numa_nodes, 2);
  EXPECT_EQ(profile_by_name("NFP6000-IB").numa_nodes, 2);
  EXPECT_EQ(profile_by_name("NFP6000-HSW").numa_nodes, 1);
  EXPECT_EQ(profile_by_name("NetFPGA-HSW").numa_nodes, 1);
  EXPECT_TRUE(profile_by_name("NFP6000-BDW").has_remote_node());
  EXPECT_FALSE(profile_by_name("NFP6000-SNB").has_remote_node());
}

TEST(ProfilesTest, AdaptersMatchTable1) {
  EXPECT_EQ(profile_by_name("NetFPGA-HSW").config.device.name, "NetFPGA-SUME");
  EXPECT_EQ(profile_by_name("NFP6000-HSW").config.device.name, "NFP6000");
}

TEST(ProfilesTest, E3HasHeavyTailJitterAndWriteCeiling) {
  const auto e3 = profile_by_name("NFP6000-HSW-E3");
  EXPECT_EQ(e3.config.jitter.kind, sim::JitterModel::Kind::Spliced);
  EXPECT_GT(e3.config.jitter.dist.quantile_ns(0.999), 10000.0);
  EXPECT_LT(e3.config.mem.write_ingest_gbps, 40.0);
}

TEST(ProfilesTest, E5SystemsHaveNarrowJitter) {
  const auto hsw = profile_by_name("NFP6000-HSW");
  EXPECT_LE(hsw.config.jitter.dist.quantile_ns(0.999), 80.0);
}

TEST(ProfilesTest, IommuOffByDefault) {
  for (const auto& p : all_profiles()) {
    EXPECT_FALSE(p.config.iommu.enabled) << p.name;
  }
}

TEST(ProfilesTest, WithIommuTogglesAndSetsPages) {
  auto cfg = with_iommu(nfp6000_bdw().config, true, 4096);
  EXPECT_TRUE(cfg.iommu.enabled);
  EXPECT_EQ(cfg.iommu.page_bytes, 4096u);
  auto sp = with_iommu(nfp6000_bdw().config, true, 2ull << 20);
  EXPECT_EQ(sp.iommu.page_bytes, 2ull << 20);
}

TEST(ProfilesTest, Iommu64EntryTlbDefault) {
  // §6.5: "we conclude that the IO-TLB has 64 entries".
  EXPECT_EQ(nfp6000_bdw().config.iommu.tlb_entries, 64u);
}

TEST(ProfilesTest, AllConfigsConstructValidSystems) {
  for (const auto& p : all_profiles()) {
    EXPECT_NO_THROW(sim::System{p.config}) << p.name;
  }
}

TEST(ProfilesTest, DdioQuotaIsTenPercent) {
  for (const auto& p : all_profiles()) {
    const auto& c = p.config.cache;
    EXPECT_EQ(c.ddio_ways, 2u) << p.name;
    EXPECT_EQ(c.ways, 20u) << p.name;  // 2/20 = the 10 % §6.3 quota
  }
}

}  // namespace
}  // namespace pcieb::sys
