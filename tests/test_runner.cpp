#include "core/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/report.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb::core {
namespace {

sim::SystemConfig hsw() { return sys::nfp6000_hsw().config; }

TEST(BenchRunnerTest, LatencyRunProducesRequestedSamples) {
  sim::System system(hsw());
  BenchParams p;
  p.kind = BenchKind::LatRd;
  p.iterations = 500;
  auto r = run_latency_bench(system, p);
  EXPECT_EQ(r.samples_ns.count(), 500u);
  EXPECT_GT(r.summary.min_ns, 0.0);
  EXPECT_GE(r.summary.max_ns, r.summary.median_ns);
  EXPECT_GE(r.summary.median_ns, r.summary.min_ns);
}

TEST(BenchRunnerTest, WarmupSamplesAreDiscarded) {
  sim::System system(hsw());
  BenchParams p;
  p.kind = BenchKind::LatRd;
  p.iterations = 300;
  p.warmup = 200;
  auto r = run_latency_bench(system, p);
  EXPECT_EQ(r.samples_ns.count(), 300u);
}

TEST(BenchRunnerTest, LatencyQuantizedToDeviceResolution) {
  sim::System system(hsw());  // NFP: 19.2 ns counter
  BenchParams p;
  p.kind = BenchKind::LatRd;
  p.iterations = 200;
  auto r = run_latency_bench(system, p);
  const double res = 19.2;
  for (double v : r.samples_ns.sorted()) {
    const double ticks = v / res;
    EXPECT_NEAR(ticks, std::round(ticks), 1e-6) << v;
  }
}

TEST(BenchRunnerTest, KindMismatchThrows) {
  sim::System system(hsw());
  BenchParams p;
  p.kind = BenchKind::BwRd;
  BenchRunner runner(system, p);
  EXPECT_THROW(runner.run_latency(), std::logic_error);

  sim::System system2(hsw());
  p.kind = BenchKind::LatRd;
  BenchRunner runner2(system2, p);
  EXPECT_THROW(runner2.run_bandwidth(), std::logic_error);
}

TEST(BenchRunnerTest, InvalidParamsThrowAtConstruction) {
  sim::System system(hsw());
  BenchParams p;
  p.transfer_size = 0;
  EXPECT_THROW(BenchRunner(system, p), std::invalid_argument);
}

TEST(BenchRunnerTest, IommuPageMismatchThrows) {
  auto cfg = sys::with_iommu(hsw(), true, 4096);
  sim::System system(cfg);
  BenchParams p;
  p.page_bytes = 2ull << 20;  // buffer pages disagree with IOMMU granule
  EXPECT_THROW(BenchRunner(system, p), std::logic_error);
}

TEST(BenchRunnerTest, BandwidthAccountsAllBytes) {
  sim::System system(hsw());
  BenchParams p;
  p.kind = BenchKind::BwWr;
  p.transfer_size = 128;
  p.iterations = 2000;
  auto r = run_bandwidth_bench(system, p);
  EXPECT_EQ(r.payload_bytes, 2000ull * 128);
  EXPECT_GT(r.elapsed, 0);
  EXPECT_GT(r.gbps, 0.0);
  EXPECT_GT(r.mtps, 0.0);
}

TEST(BenchRunnerTest, RdwrReportsPerDirectionBytes) {
  sim::System system(hsw());
  BenchParams p;
  p.kind = BenchKind::BwRdWr;
  p.transfer_size = 128;
  p.iterations = 2000;
  auto r = run_bandwidth_bench(system, p);
  EXPECT_EQ(r.payload_bytes, 1000ull * 128);
}

TEST(BenchRunnerTest, BandwidthWarmupExcludedFromTiming) {
  sim::System a(hsw());
  BenchParams p;
  p.kind = BenchKind::BwRd;
  p.transfer_size = 64;
  p.iterations = 5000;
  auto base = run_bandwidth_bench(a, p);

  sim::System b(hsw());
  p.warmup = 5000;
  auto warmed = run_bandwidth_bench(b, p);
  // Same measured iterations; throughput similar despite the extra phase.
  EXPECT_EQ(warmed.payload_bytes, base.payload_bytes);
  EXPECT_NEAR(warmed.gbps, base.gbps, base.gbps * 0.1);
}

TEST(BenchRunnerTest, ColdSlowerThanWarmForSmallReads) {
  BenchParams p;
  p.kind = BenchKind::LatRd;
  p.transfer_size = 64;
  p.iterations = 1000;
  p.cache_state = CacheState::HostWarm;
  sim::System warm_sys(hsw());
  auto warm = run_latency_bench(warm_sys, p);

  p.cache_state = CacheState::Thrash;
  sim::System cold_sys(hsw());
  auto cold = run_latency_bench(cold_sys, p);
  EXPECT_GT(cold.summary.median_ns, warm.summary.median_ns + 50.0);
}

TEST(BenchRunnerTest, DeviceWarmServesReadsFromCache) {
  BenchParams p;
  p.kind = BenchKind::LatRd;
  p.transfer_size = 64;
  p.iterations = 1000;
  p.cache_state = CacheState::DeviceWarm;
  sim::System sys1(hsw());
  auto dev_warm = run_latency_bench(sys1, p);

  p.cache_state = CacheState::HostWarm;
  sim::System sys2(hsw());
  auto host_warm = run_latency_bench(sys2, p);
  EXPECT_NEAR(dev_warm.summary.median_ns, host_warm.summary.median_ns, 25.0);
}

TEST(BenchRunnerTest, PendingEventsRejected) {
  sim::System system(hsw());
  system.sim().after(100, [] {});
  BenchParams p;
  EXPECT_THROW(BenchRunner(system, p), std::logic_error);
}

TEST(ReportTest, PctChange) {
  EXPECT_DOUBLE_EQ(pct_change(100.0, 80.0), -20.0);
  EXPECT_DOUBLE_EQ(pct_change(50.0, 75.0), 50.0);
  EXPECT_DOUBLE_EQ(pct_change(0.0, 10.0), 0.0);
}

TEST(ReportTest, FormatsIncludeNumbers) {
  sim::System system(hsw());
  BenchParams p;
  p.kind = BenchKind::LatRd;
  p.iterations = 100;
  auto r = run_latency_bench(system, p);
  EXPECT_NE(format(r).find("LAT_RD"), std::string::npos);

  sim::System system2(hsw());
  p.kind = BenchKind::BwRd;
  auto b = run_bandwidth_bench(system2, p);
  EXPECT_NE(format(b).find("Gb/s"), std::string::npos);
}

TEST(ReportTest, CdfDumpHasRequestedPoints) {
  sim::System system(hsw());
  BenchParams p;
  p.kind = BenchKind::LatRd;
  p.iterations = 100;
  auto r = run_latency_bench(system, p);
  const std::string dump = cdf_dump(r, 10);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 10);
}

}  // namespace
}  // namespace pcieb::core
