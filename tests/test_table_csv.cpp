#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace pcieb {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"a", "long_header"});
  t.add_row({"xxxxx", "1"});
  const std::string out = t.to_string();
  std::istringstream is(out);
  std::string header, sep, row;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row);
  EXPECT_NE(header.find("long_header"), std::string::npos);
  EXPECT_NE(sep.find("---"), std::string::npos);
  EXPECT_NE(row.find("xxxxx"), std::string::npos);
}

TEST(TextTableTest, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.0, 0), "3");
  EXPECT_EQ(TextTable::num(std::nan(""), 2), "-");
}

TEST(TextTableTest, EmptyTableStillPrintsHeader) {
  TextTable t({"col"});
  EXPECT_NE(t.to_string().find("col"), std::string::npos);
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/pcieb_csv_test.csv";
  {
    CsvWriter w(path);
    w.header({"x", "y"});
    w.row(1, 2.5);
    w.row("a", "b");
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_zz/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace pcieb
