#include "common/units.hpp"

#include <gtest/gtest.h>

namespace pcieb {
namespace {

TEST(UnitsTest, NanosRoundTrip) {
  EXPECT_EQ(from_nanos(1.0), 1000);
  EXPECT_DOUBLE_EQ(to_nanos(from_nanos(123.456)), 123.456);
  EXPECT_EQ(from_nanos(19.2), 19200);
}

TEST(UnitsTest, ScaledConstructors) {
  EXPECT_EQ(from_micros(1.0), from_nanos(1000.0));
  EXPECT_EQ(from_millis(1.0), from_micros(1000.0));
  EXPECT_EQ(from_seconds(1.0), from_millis(1000.0));
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(2.5)), 2.5);
}

TEST(UnitsTest, SizeLiterals) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
}

TEST(UnitsTest, GbpsComputation) {
  // 1000 bytes in 1 us = 8 Gb/s.
  EXPECT_DOUBLE_EQ(gbps(1000, from_micros(1.0)), 8.0);
  EXPECT_EQ(gbps(1000, 0), 0.0);
  EXPECT_EQ(gbps(1000, -5), 0.0);
}

TEST(UnitsTest, SerializationTime) {
  // 1000 bytes at 8 Gb/s = 1 us.
  EXPECT_EQ(serialization_ps(1000, 8.0), from_micros(1.0));
  // 88 wire bytes at 57.88 Gb/s ~ 12.16 ns (the 64 B MWr TLP time).
  EXPECT_NEAR(to_nanos(serialization_ps(88, 57.88)), 12.16, 0.01);
  EXPECT_EQ(serialization_ps(0, 10.0), 0);
}

TEST(UnitsTest, GbpsAndSerializationAreInverse) {
  for (std::uint64_t bytes : {64ull, 1500ull, 1ull << 20}) {
    for (double rate : {1.0, 8.0, 57.88, 252.06}) {
      const Picos t = serialization_ps(bytes, rate);
      EXPECT_NEAR(gbps(bytes, t), rate, rate * 0.001) << bytes << "@" << rate;
    }
  }
}

}  // namespace
}  // namespace pcieb
