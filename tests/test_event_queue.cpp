// The allocation-free event engine's ordering and storage contracts:
//
//  * EventQueue executes in exactly the (time, schedule-order) sequence of
//    the old std::priority_queue representation — checked property-style
//    against a reference heap over adversarial time distributions that
//    exercise every wheel level and the cascade paths.
//  * The node pool recycles: steady-state traffic never grows
//    nodes_allocated once warmed.
//  * SmallFn stores small captures inline, falls back to the heap above
//    kInlineBytes, and destroys the target exactly once on every path —
//    including invoke_consume() with a throwing callable.
//  * Simulator::run_until does NOT reset the step-hook cadence counter, so
//    chunked runs sample at the same executed-counts as one run().
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/small_fn.hpp"

namespace pcieb::sim {
namespace {

// ---------------------------------------------------------------------------
// EventQueue vs a reference (time, seq) min-heap.

/// Reference ordering: ascending time, ties broken by schedule order.
class ReferenceQueue {
 public:
  void push(Picos t, int id) { heap_.push({t, seq_++, id}); }
  bool empty() const { return heap_.empty(); }
  Picos next_time() const { return std::get<0>(heap_.top()); }
  int pop() {
    const int id = std::get<2>(heap_.top());
    heap_.pop();
    return id;
  }

 private:
  using Entry = std::tuple<Picos, std::uint64_t, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
};

/// Time deltas drawn from every wheel regime: same-slot (0), sub-slot
/// (< 4096 ps), level-0 (< 1 us), and each coarser level up to deltas
/// that land seven levels up — plus heavy duplication to stress ties.
Picos random_delta(std::mt19937_64& rng) {
  switch (rng() % 8) {
    case 0: return 0;                                     // exact ties
    case 1: return static_cast<Picos>(rng() % 16);        // same sub-slot
    case 2: return static_cast<Picos>(rng() % 4096);      // bottom slot
    case 3: return static_cast<Picos>(rng() % (1 << 20)); // level 0/1
    case 4: return static_cast<Picos>(rng() % (1ull << 28));
    case 5: return static_cast<Picos>(rng() % (1ull << 36));
    case 6: return static_cast<Picos>(rng() % (1ull << 44));
    default: return static_cast<Picos>(rng() % (1ull << 52));
  }
}

void drain_one(EventQueue& q, std::vector<int>& order) {
  EventQueue::EventNode* node = q.pop();
  ASSERT_NE(node, nullptr);
  node->fn.invoke_consume();
  q.recycle(node);
  ASSERT_FALSE(order.empty());
}

TEST(EventQueue, MatchesReferenceOrderOnBulkDrain) {
  std::mt19937_64 rng(0x5eed);
  for (int round = 0; round < 10; ++round) {
    EventQueue q;
    ReferenceQueue ref;
    std::vector<int> order;
    for (int id = 0; id < 2000; ++id) {
      const Picos t = random_delta(rng);
      q.push(t, [&order, id] { order.push_back(id); });
      ref.push(t, id);
    }
    while (!q.empty()) {
      EXPECT_EQ(q.next_time(), ref.next_time());
      drain_one(q, order);
      EXPECT_EQ(order.back(), ref.pop());
    }
    EXPECT_TRUE(ref.empty());
    EXPECT_EQ(order.size(), 2000u);
  }
}

TEST(EventQueue, MatchesReferenceUnderInterleavedPushPop) {
  std::mt19937_64 rng(0xfeed);
  EventQueue q;
  ReferenceQueue ref;
  std::vector<int> order;
  Picos now = 0;  // time of the most recently popped event
  int next_id = 0;
  for (int step = 0; step < 30000; ++step) {
    if (q.empty() || rng() % 3 != 0) {
      // Pushes must be >= the last popped time (Simulator enforces
      // >= now()); deltas span every wheel level.
      const Picos t = now + random_delta(rng);
      const int id = next_id++;
      q.push(t, [&order, id] { order.push_back(id); });
      ref.push(t, id);
    } else {
      ASSERT_EQ(q.next_time(), ref.next_time());
      now = q.next_time();
      drain_one(q, order);
      ASSERT_EQ(order.back(), ref.pop());
    }
  }
  while (!q.empty()) {
    ASSERT_EQ(q.next_time(), ref.next_time());
    drain_one(q, order);
    ASSERT_EQ(order.back(), ref.pop());
  }
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(static_cast<int>(order.size()), next_id);
}

TEST(EventQueue, FarFutureEventsCascadeWithoutReordering) {
  // One event per reachable wheel level (positive Picos caps out in level
  // 6's bit range), pushed in reverse time order, plus ties at each
  // timestamp to check cascades preserve schedule order.
  EventQueue q;
  std::vector<int> order;
  std::vector<Picos> times;
  for (unsigned level = 0; level < 7; ++level) {
    times.push_back(Picos{1} << (12 + 8 * level));
  }
  int id = 0;
  for (auto it = times.rbegin(); it != times.rend(); ++it) {
    const Picos t = *it;
    for (int k = 0; k < 3; ++k) {
      q.push(t, [&order, id] { order.push_back(id); });
      ++id;
    }
  }
  std::vector<int> expect;
  // Ascending time; within a time, ascending push order.
  for (int lev = 6; lev >= 0; --lev) {
    for (int k = 0; k < 3; ++k) expect.push_back(3 * lev + k);
  }
  while (!q.empty()) drain_one(q, order);
  EXPECT_EQ(order, expect);
}

TEST(EventQueue, ClearDestroysPendingCallables) {
  int live = 0;
  struct Probe {
    int* live;
    explicit Probe(int* l) : live(l) { ++*live; }
    Probe(const Probe& o) : live(o.live) { ++*live; }
    Probe(Probe&& o) noexcept : live(o.live) { ++*live; }
    ~Probe() { --*live; }
    void operator()() {}
  };
  {
    EventQueue q;
    for (int i = 0; i < 100; ++i) q.push(i, Probe(&live));
    EXPECT_GT(live, 0);
    q.clear();
    EXPECT_EQ(live, 0);
    EXPECT_TRUE(q.empty());
    // The queue is reusable after clear().
    std::vector<int> order;
    q.push(5, [&order] { order.push_back(1); });
    while (!q.empty()) drain_one(q, order);
    EXPECT_EQ(order, std::vector<int>{1});
  }
  EXPECT_EQ(live, 0);
}

// ---------------------------------------------------------------------------
// Node pool reuse.

TEST(EventQueue, SteadyStateTrafficRecyclesNodes) {
  Simulator sim;
  // A self-limiting chain holding at most 4 events in flight — the shape
  // of real simulator traffic (each completion schedules successors).
  int remaining = 50000;
  std::function<void()> tick = [&] {
    if (remaining-- > 0) sim.after(100, tick);
  };
  for (int i = 0; i < 4; ++i) sim.after(i, tick);
  for (int i = 0; i < 1000; ++i) sim.step();
  const std::size_t warmed = sim.event_nodes_allocated();
  sim.run();
  // Every node after warmup came from the free list.
  EXPECT_EQ(sim.event_nodes_allocated(), warmed);
  EXPECT_GE(warmed, 4u);
}

TEST(EventQueue, PoolGrowsOnlyWithConcurrentPending) {
  EventQueue q;
  for (int i = 0; i < 300; ++i) q.push(i, [] {});
  const std::size_t high = q.nodes_allocated();
  EXPECT_GE(high, 300u);
  while (!q.empty()) {
    EventQueue::EventNode* node = q.pop();
    node->fn.invoke_consume();
    q.recycle(node);
  }
  // Re-filling to the same depth reuses every recycled cell.
  for (int i = 0; i < 300; ++i) q.push(i, [] {});
  EXPECT_EQ(q.nodes_allocated(), high);
}

// ---------------------------------------------------------------------------
// SmallFn storage and destruction contracts.

struct LifeCounter {
  static int live;
  static int invoked;
};
int LifeCounter::live = 0;
int LifeCounter::invoked = 0;

template <std::size_t Pad>
struct Tracked {
  unsigned char pad[Pad] = {};
  Tracked() { ++LifeCounter::live; }
  Tracked(const Tracked&) { ++LifeCounter::live; }
  Tracked(Tracked&&) noexcept { ++LifeCounter::live; }
  ~Tracked() { --LifeCounter::live; }
  void operator()() { ++LifeCounter::invoked; }
};

template <std::size_t Pad>
struct ThrowingTracked : Tracked<Pad> {
  void operator()() { throw std::runtime_error("boom"); }
};

using SmallTracked = Tracked<8>;
using BigTracked = Tracked<128>;

static_assert(SmallFn::stored_inline<SmallTracked>(),
              "8 B captures must be inline");
static_assert(!SmallFn::stored_inline<BigTracked>(),
              "128 B captures must spill to the heap");

class SmallFnLifetime : public ::testing::Test {
 protected:
  void SetUp() override { LifeCounter::live = LifeCounter::invoked = 0; }
  void TearDown() override { EXPECT_EQ(LifeCounter::live, 0); }
};

TEST_F(SmallFnLifetime, InlineInvokeConsumeDestroysOnce) {
  SmallFn fn;
  fn.emplace(SmallTracked{});
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(LifeCounter::live, 1);
  fn.invoke_consume();
  EXPECT_EQ(LifeCounter::invoked, 1);
  EXPECT_EQ(LifeCounter::live, 0);
  EXPECT_FALSE(static_cast<bool>(fn));
  fn.reset();  // reset on an empty fn is a no-op (the pop path does this)
  EXPECT_EQ(LifeCounter::live, 0);
}

TEST_F(SmallFnLifetime, HeapFallbackInvokeConsumeDestroysOnce) {
  SmallFn fn;
  fn.emplace(BigTracked{});
  EXPECT_EQ(LifeCounter::live, 1);
  fn.invoke_consume();
  EXPECT_EQ(LifeCounter::invoked, 1);
  EXPECT_EQ(LifeCounter::live, 0);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST_F(SmallFnLifetime, ThrowingInlineCallableStillDestroyedExactlyOnce) {
  SmallFn fn;
  fn.emplace(ThrowingTracked<8>{});
  EXPECT_EQ(LifeCounter::live, 1);
  EXPECT_THROW(fn.invoke_consume(), std::runtime_error);
  EXPECT_EQ(LifeCounter::live, 0);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST_F(SmallFnLifetime, ThrowingHeapCallableStillDestroyedExactlyOnce) {
  SmallFn fn;
  fn.emplace(ThrowingTracked<128>{});
  EXPECT_EQ(LifeCounter::live, 1);
  EXPECT_THROW(fn.invoke_consume(), std::runtime_error);
  EXPECT_EQ(LifeCounter::live, 0);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST_F(SmallFnLifetime, MoveTransfersOwnershipBothStorages) {
  SmallFn a;
  a.emplace(SmallTracked{});
  SmallFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(LifeCounter::invoked, 1);
  b.reset();
  EXPECT_EQ(LifeCounter::live, 0);

  SmallFn c;
  c.emplace(BigTracked{});
  SmallFn d;
  d = std::move(c);
  EXPECT_FALSE(static_cast<bool>(c));
  d();
  EXPECT_EQ(LifeCounter::invoked, 2);
}

TEST_F(SmallFnLifetime, OversizedEventRoundTripsThroughQueue) {
  // A >48 B capture scheduled through the queue runs and is destroyed
  // exactly once by the pop path's invoke_consume.
  EventQueue q;
  q.push(10, BigTracked{});
  EXPECT_EQ(LifeCounter::live, 1);
  EventQueue::EventNode* node = q.pop();
  ASSERT_NE(node, nullptr);
  node->fn.invoke_consume();
  q.recycle(node);
  EXPECT_EQ(LifeCounter::invoked, 1);
  EXPECT_EQ(LifeCounter::live, 0);
}

// ---------------------------------------------------------------------------
// run_until must not reset the step-hook cadence (watchdog sampling).

TEST(SimulatorHook, StepHookCadenceSurvivesRunUntilBoundaries) {
  const auto schedule = [](Simulator& sim) {
    for (int i = 1; i <= 10; ++i) sim.at(i, [] {});
  };

  Simulator whole;
  schedule(whole);
  std::vector<std::size_t> whole_samples;
  whole.set_step_hook(
      [&](Picos, std::size_t executed) { whole_samples.push_back(executed); },
      4);
  whole.run();

  Simulator chunked;
  schedule(chunked);
  std::vector<std::size_t> chunked_samples;
  chunked.set_step_hook(
      [&](Picos, std::size_t executed) { chunked_samples.push_back(executed); },
      4);
  // Chunk boundaries deliberately misaligned with the every-4 cadence: a
  // counter reset at the boundary would sample at {4, 7} instead.
  chunked.run_until(3);
  chunked.run_until(5);
  chunked.run_until(10);

  EXPECT_EQ(whole_samples, (std::vector<std::size_t>{4, 8}));
  EXPECT_EQ(chunked_samples, whole_samples);
}

}  // namespace
}  // namespace pcieb::sim
