#include "sim/multi_system.hpp"

#include <gtest/gtest.h>

#include "core/multi_runner.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb {
namespace {

using core::BenchKind;
using core::MultiDeviceSpec;

sim::SystemConfig host() { return sys::nfp6000_bdw().config; }

MultiDeviceSpec read_spec(std::uint64_t window, std::uint64_t pages = 4096) {
  MultiDeviceSpec spec;
  spec.kind = BenchKind::BwRd;
  spec.transfer_size = 64;
  spec.window_bytes = window;
  spec.page_bytes = pages;
  spec.iterations = 8000;
  spec.warmup = 2000;
  return spec;
}

TEST(MultiDeviceSystemTest, ConstructionRejectsZeroDevices) {
  EXPECT_THROW(sim::MultiDeviceSystem(host(), 0), std::invalid_argument);
}

TEST(MultiDeviceSystemTest, PortsAreIndependentObjects) {
  sim::MultiDeviceSystem system(host(), 3);
  EXPECT_EQ(system.device_count(), 3u);
  EXPECT_NE(&system.device(0), &system.device(1));
  EXPECT_NE(&system.root_complex(0), &system.root_complex(2));
}

TEST(MultiDeviceRunnerTest, RejectsLatencyKinds) {
  sim::MultiDeviceSystem system(host(), 1);
  MultiDeviceSpec spec = read_spec(64 << 10);
  spec.kind = BenchKind::LatRd;
  EXPECT_THROW(core::run_multi_device_bandwidth(system, spec),
               std::invalid_argument);
}

TEST(MultiDeviceRunnerTest, SingleDeviceMatchesSingleSystem) {
  sim::MultiDeviceSystem system(host(), 1);
  const auto r = core::run_multi_device_bandwidth(system, read_spec(64 << 10));
  ASSERT_EQ(r.per_device_gbps.size(), 1u);
  // ~27 Gb/s: the warm 64 B read rate of the single-device system.
  EXPECT_NEAR(r.per_device_gbps[0], 27.0, 2.5);
}

TEST(MultiDeviceRunnerTest, SeparateLinksScaleWithoutIommu) {
  // Each device has its own x8 link; without the IOMMU the shared memory
  // system has ample headroom, so aggregate throughput scales.
  sim::MultiDeviceSystem one(host(), 1);
  const auto r1 = core::run_multi_device_bandwidth(one, read_spec(128 << 10));
  sim::MultiDeviceSystem four(host(), 4);
  const auto r4 = core::run_multi_device_bandwidth(four, read_spec(128 << 10));
  EXPECT_GT(r4.total_gbps, 3.5 * r1.total_gbps);
}

TEST(MultiDeviceRunnerTest, SharedIoTlbThrashesWithManyDevices) {
  // The §9 question: with 4 KB pages, each 128 KB window needs 32 IO-TLB
  // entries. One device fits the 64-entry TLB; four devices thrash it.
  const auto iommu_host = sys::with_iommu(host(), true, 4096);
  sim::MultiDeviceSystem one(iommu_host, 1);
  const auto r1 = core::run_multi_device_bandwidth(one, read_spec(128 << 10));
  EXPECT_NEAR(r1.per_device_gbps[0], 27.0, 2.5);  // fits: no penalty
  EXPECT_EQ(r1.tlb_misses, 0u);

  sim::MultiDeviceSystem four(iommu_host, 4);
  const auto r4 = core::run_multi_device_bandwidth(four, read_spec(128 << 10));
  EXPECT_LT(r4.per_device_gbps[0], 0.5 * r1.per_device_gbps[0]);
  EXPECT_GT(r4.tlb_misses, 1000u);
}

TEST(MultiDeviceRunnerTest, SuperpagesRemoveTheContention) {
  const auto sp_host = sys::with_iommu(host(), true, 2ull << 20);
  sim::MultiDeviceSystem four(sp_host, 4);
  const auto r =
      core::run_multi_device_bandwidth(four, read_spec(128 << 10, 2ull << 20));
  for (double g : r.per_device_gbps) {
    EXPECT_NEAR(g, 27.0, 2.5);
  }
}

TEST(MultiDeviceRunnerTest, ActiveSubsetLimitsLoad) {
  sim::MultiDeviceSystem system(host(), 4);
  MultiDeviceSpec spec = read_spec(64 << 10);
  spec.active_devices = 2;
  const auto r = core::run_multi_device_bandwidth(system, spec);
  EXPECT_EQ(r.per_device_gbps.size(), 2u);
}

TEST(MultiDeviceRunnerTest, WritesRunConcurrently) {
  sim::MultiDeviceSystem system(host(), 2);
  MultiDeviceSpec spec = read_spec(64 << 10);
  spec.kind = BenchKind::BwWr;
  const auto r = core::run_multi_device_bandwidth(system, spec);
  ASSERT_EQ(r.per_device_gbps.size(), 2u);
  EXPECT_GT(r.per_device_gbps[0], 30.0);
  EXPECT_GT(r.per_device_gbps[1], 30.0);
}

TEST(MultiDeviceRunnerTest, DeterministicAcrossRuns) {
  sim::MultiDeviceSystem a(host(), 2);
  const auto ra = core::run_multi_device_bandwidth(a, read_spec(128 << 10));
  sim::MultiDeviceSystem b(host(), 2);
  const auto rb = core::run_multi_device_bandwidth(b, read_spec(128 << 10));
  EXPECT_EQ(ra.per_device_gbps, rb.per_device_gbps);
}

}  // namespace
}  // namespace pcieb
