#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pcieb {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64Test, KnownVector) {
  // Reference values for seed 0 from the published SplitMix64 algorithm.
  SplitMix64 s(0);
  EXPECT_EQ(s.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(s.next(), 0x6e789e6aa1b965f4ULL);
}

TEST(Xoshiro256Test, DeterministicForSeed) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256Test, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256Test, BelowZeroBoundIsZero) {
  Xoshiro256 rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro256Test, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256Test, UniformMeanIsHalf) {
  Xoshiro256 rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256Test, BelowCoversAllResidues) {
  Xoshiro256 rng(21);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256Test, BelowRoughlyUniform) {
  Xoshiro256 rng(31);
  std::vector<int> counts(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(16)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 16, n / 16 * 0.1);
  }
}

}  // namespace
}  // namespace pcieb
