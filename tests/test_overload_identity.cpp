// Overload determinism: an overload-armed chaos campaign produces the
// same per-trial frame ledgers — and the campaign summary and CSV built
// from them — whether trials run serially, on the in-process thread
// pool, in fork-isolated workers (any --jobs), or resumed from a journal
// cut mid-campaign. Ledgers are journal-carried, so a resumed campaign
// never re-simulates them.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "check/campaign_exec.hpp"
#include "check/chaos.hpp"
#include "exec/journal.hpp"
#include "exec/outcome.hpp"
#include "nic/overload.hpp"

namespace fs = std::filesystem;
using namespace pcieb;

namespace {

struct TempDir {
  std::string path = exec::make_temp_dir("pcieb-overload-id-");
  ~TempDir() { fs::remove_all(path); }
};

check::ChaosConfig overload_campaign() {
  check::ChaosConfig cfg;
  cfg.trials = 10;
  cfg.iterations = 500;
  cfg.shrink = false;
  cfg.offered_load = 2.0;
  cfg.service = nic::ServiceMode::Coalesce;
  cfg.backpressure = true;
  cfg.monitors_throw = true;
  return cfg;
}

/// Per-trial ledgers in index order, via the campaign observer.
std::vector<std::string> collect(check::ChaosConfig cfg) {
  std::vector<std::string> out;
  check::run_campaign(cfg, [&](const check::TrialSpec&,
                               const check::TrialOutcome& o) {
    out.push_back(o.overload);
  });
  return out;
}

}  // namespace

TEST(OverloadIdentity, ThreadedCampaignMatchesSerialTrialForTrial) {
  const auto serial = collect(overload_campaign());
  ASSERT_EQ(serial.size(), 10u);
  for (const auto& ledger : serial) EXPECT_FALSE(ledger.empty());

  auto threaded = overload_campaign();
  threaded.threads = 8;
  EXPECT_EQ(collect(threaded), serial);
}

TEST(OverloadIdentity, ForkIsolatedAndResumedCampaignsMatchByteForByte) {
  // Reference: uninterrupted fork-isolated run on several workers.
  TempDir ref_dir, cut_dir;
  check::ExecCampaignConfig ref_cfg;
  ref_cfg.chaos = overload_campaign();
  ref_cfg.journal_dir = ref_dir.path;
  ref_cfg.pool.jobs = 3;
  ref_cfg.pool.backoff.initial_seconds = 0.01;
  ref_cfg.pool.backoff.cap_seconds = 0.02;
  const auto ref = check::run_campaign_isolated(ref_cfg);
  ASSERT_EQ(ref.records.size(), 10u);
  EXPECT_EQ(ref.violation, 0u);
  EXPECT_GT(ref.overload_offered, 0u);
  EXPECT_EQ(ref.overload_offered,
            ref.overload_delivered + ref.overload_dropped);

  // The worker ledgers agree with the in-process campaign's.
  const auto in_process = collect(overload_campaign());
  for (std::size_t i = 0; i < ref.records.size(); ++i) {
    EXPECT_EQ(ref.records[i].overload, in_process[i]) << i;
  }

  // A campaign killed mid-run and resumed reproduces the canonical
  // summary and CSV byte for byte — ledger columns included, read back
  // from the journal rather than re-simulated.
  auto cut = ref_cfg;
  cut.journal_dir = cut_dir.path;
  cut.pool.jobs = 1;
  cut.stop_after = 4;
  const auto partial = check::run_campaign_isolated(cut);
  EXPECT_EQ(partial.records.size(), 4u);

  cut.stop_after = 0;
  cut.resume = true;
  const auto resumed = check::run_campaign_isolated(cut);
  EXPECT_EQ(resumed.resumed, 4u);
  EXPECT_EQ(resumed.summary_text(cut.chaos), ref.summary_text(ref_cfg.chaos));
  EXPECT_EQ(resumed.overload_offered, ref.overload_offered);
  EXPECT_EQ(resumed.overload_delivered, ref.overload_delivered);
  EXPECT_EQ(resumed.overload_dropped, ref.overload_dropped);

  const std::string csv_ref = ref_dir.path + "/ref.csv";
  const std::string csv_res = ref_dir.path + "/resumed.csv";
  ref.write_csv(csv_ref);
  resumed.write_csv(csv_res);
  EXPECT_EQ(exec::read_file(csv_ref), exec::read_file(csv_res));
}

TEST(OverloadIdentity, ResumeRejectsOverloadMismatch) {
  // The journal meta pins the overload shape: resuming an overload-armed
  // journal with a different load multiple (or none at all) must refuse
  // rather than mix ledgers from two different campaigns.
  TempDir tmp;
  check::ExecCampaignConfig cfg;
  cfg.chaos = overload_campaign();
  cfg.chaos.trials = 3;
  cfg.journal_dir = tmp.path;
  check::run_campaign_isolated(cfg);

  auto other = cfg;
  other.resume = true;
  other.chaos.offered_load = 4.0;
  EXPECT_THROW(check::run_campaign_isolated(other), exec::InfraError);
  other.chaos.offered_load = 0.0;
  EXPECT_THROW(check::run_campaign_isolated(other), exec::InfraError);
}

TEST(OverloadIdentity, TrialRecordRoundTripsLedger) {
  check::TrialRecord rec;
  rec.index = 2;
  rec.status = check::TrialRecord::Status::Ok;
  rec.spec = "trial 2: X overload=2x poll bp=off";
  rec.overload =
      "offered=800 delivered=500 mac=1 ring=299 admission=0 pause_ps=0 irqs=0";
  const auto back = check::TrialRecord::deserialize(rec.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->overload, rec.overload);

  // Records without the field (pre-overload journals) still parse.
  check::TrialRecord bare;
  bare.index = 1;
  bare.spec = "trial 1: X";
  const auto old = check::TrialRecord::deserialize(bare.serialize());
  ASSERT_TRUE(old.has_value());
  EXPECT_TRUE(old->overload.empty());
}

TEST(OverloadIdentity, ShrinkHalvesOverloadFrames) {
  // The shrinker's length-halving step must shrink the overload frame
  // count (the trial's actual workload length), not just the unused
  // micro-bench iteration count.
  check::ChaosConfig cfg;
  cfg.offered_load = 2.0;
  // Enough arrivals for several monitor epochs (epoch_arrivals = 256):
  // the planted IRQ storm needs at least two consecutive epoch edges
  // with delivery frozen before the progress monitor can flag it.
  cfg.iterations = 4000;
  auto spec = check::generate_trial(cfg, 0);
  ASSERT_TRUE(spec.overload_armed);
  spec.overload.test_livelock_bug = true;
  spec.overload.service = nic::ServiceMode::Coalesce;
  auto out = check::run_trial(spec);
  ASSERT_TRUE(out.failed);
  const auto shrunk = check::shrink_trial(spec, 64);
  EXPECT_TRUE(shrunk.outcome.failed);
  EXPECT_LT(shrunk.minimal.overload.frames, spec.overload.frames);
  EXPECT_TRUE(shrunk.minimal.plan.rules.empty());
}
