// obs::TimeSeries: interval-close semantics (deltas sum exactly to the
// counter totals), the sample-hook cadence surviving run_until boundaries
// (the regression the step hook already guards against), the bounded
// ring, and the CSV/JSON/Chrome export shapes.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "sim/simulator.hpp"

namespace pcieb::obs {
namespace {

TEST(TimeSeriesTest, RejectsDegenerateConfigs) {
  CounterRegistry reg;
  EXPECT_THROW(TimeSeries(reg, 0), std::invalid_argument);
  EXPECT_THROW(TimeSeries(reg, -5), std::invalid_argument);
  EXPECT_THROW(TimeSeries(reg, 100, 0), std::invalid_argument);
}

TEST(TimeSeriesTest, DeltasSumToFinalCounterTotals) {
  std::uint64_t ops = 0;
  double gauge = 0.0;
  CounterRegistry reg;
  reg.add_counter("ops", [&] { return static_cast<double>(ops); });
  reg.add_gauge("level", [&] { return gauge; });

  TimeSeries ts(reg, 100);
  ops = 3;
  gauge = 1.5;
  ts.observe(100);  // closes [0,100): delta 3
  ops = 10;
  gauge = 0.5;
  ts.observe(250);  // closes [100,200): delta 7, then [200,250) stays open
  ops = 12;
  ts.finish(250);   // partial tail [200,250): delta 2

  const auto iv = ts.intervals();
  ASSERT_EQ(iv.size(), 3u);
  EXPECT_EQ(iv[0].start, 0);
  EXPECT_EQ(iv[0].end, 100);
  EXPECT_DOUBLE_EQ(iv[0].values[0], 3.0);
  EXPECT_DOUBLE_EQ(iv[0].values[1], 1.5);  // gauge: end-of-interval sample
  EXPECT_EQ(iv[1].start, 100);
  EXPECT_EQ(iv[1].end, 200);
  EXPECT_DOUBLE_EQ(iv[1].values[0], 7.0);
  EXPECT_EQ(iv[2].start, 200);
  EXPECT_EQ(iv[2].end, 250);
  EXPECT_DOUBLE_EQ(iv[2].values[0], 2.0);

  double sum = 0;
  for (const auto& i : iv) sum += i.values[0];
  EXPECT_DOUBLE_EQ(sum, 12.0);  // exactly the final counter value
}

TEST(TimeSeriesTest, CrossingManyBoundariesAttributesDeltaToFirstClose) {
  std::uint64_t ops = 0;
  CounterRegistry reg;
  reg.add_counter("ops", [&] { return static_cast<double>(ops); });
  TimeSeries ts(reg, 10);
  ops = 5;
  ts.observe(45);  // closes [0,10)..[30,40): first takes delta 5, rest 0
  const auto iv = ts.intervals();
  ASSERT_EQ(iv.size(), 4u);
  EXPECT_DOUBLE_EQ(iv[0].values[0], 5.0);
  for (std::size_t i = 1; i < iv.size(); ++i) {
    EXPECT_DOUBLE_EQ(iv[i].values[0], 0.0);
  }
}

TEST(TimeSeriesTest, FinishIsIdempotentAndSealsTheSeries) {
  CounterRegistry reg;
  std::uint64_t ops = 0;
  reg.add_counter("ops", [&] { return static_cast<double>(ops); });
  TimeSeries ts(reg, 100);
  ts.observe(100);
  ts.finish(130);
  const std::size_t n = ts.size();
  ts.finish(130);  // no-op
  EXPECT_EQ(ts.size(), n);
  EXPECT_THROW(ts.observe(200), std::logic_error);
}

TEST(TimeSeriesTest, RingDropsOldestBeyondCapacity) {
  CounterRegistry reg;
  std::uint64_t ops = 0;
  reg.add_counter("ops", [&] { return static_cast<double>(ops); });
  TimeSeries ts(reg, 10, /*capacity=*/4);
  ops = 100;
  ts.observe(100);  // closes 10 intervals into a 4-slot ring
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.dropped(), 6u);
  const auto iv = ts.intervals();
  ASSERT_EQ(iv.size(), 4u);
  // Oldest-first, and the retained window is the LAST four intervals.
  EXPECT_EQ(iv.front().start, 60);
  EXPECT_EQ(iv.back().end, 100);
}

TEST(TimeSeriesTest, RegistryGrowthAfterConstructionThrows) {
  CounterRegistry reg;
  std::uint64_t ops = 0;
  reg.add_counter("ops", [&] { return static_cast<double>(ops); });
  TimeSeries ts(reg, 100);
  reg.add_counter("late", [] { return 0.0; });
  EXPECT_THROW(ts.observe(100), std::logic_error);
}

/// The cadence contract the ISSUE pins: driving the sampler through many
/// run_until() boundaries must produce the identical series to one
/// uninterrupted run — the sample-event counter is not reset when the
/// engine stops at a time horizon.
TEST(TimeSeriesTest, SampleHookCadenceSurvivesRunUntilBoundaries) {
  const auto drive = [](bool chunked) {
    sim::Simulator sim;
    std::uint64_t work = 0;
    CounterRegistry reg;
    reg.add_counter("work", [&] { return static_cast<double>(work); });
    TimeSeries ts(reg, 50);
    // Sample every 3rd executed event: boundaries are only noticed on
    // event execution, so the every-N cadence shapes the series.
    sim.set_sample_hook([&](Picos now) { ts.observe(now); }, 3);
    for (Picos t = 5; t <= 1000; t += 5) {
      sim.at(t, [&] { ++work; });
    }
    if (chunked) {
      // Horizons stay below the last event so the final run() leaves
      // now() at 1000 in both drivers (run_until parks now() at the
      // horizon even when no event lands there).
      for (Picos horizon = 7; horizon < 1000; horizon += 7) {
        sim.run_until(horizon);
      }
      sim.run();
    } else {
      sim.run();
    }
    ts.finish(sim.now());
    std::ostringstream os;
    ts.write_csv(os);
    return os.str();
  };
  EXPECT_EQ(drive(false), drive(true));
}

TEST(TimeSeriesTest, CsvAndJsonShapes) {
  CounterRegistry reg;
  std::uint64_t ops = 0;
  reg.add_counter("ops", [&] { return static_cast<double>(ops); });
  reg.add_gauge("level", [] { return 2.5; });
  TimeSeries ts(reg, 100);
  ops = 4;
  ts.observe(100);
  ts.finish(150);

  std::ostringstream csv;
  ts.write_csv(csv);
  const std::string c = csv.str();
  EXPECT_EQ(c.substr(0, c.find('\n')), "t_start_ps,t_end_ps,ops,level");
  EXPECT_NE(c.find("0,100,4,2.5"), std::string::npos);
  EXPECT_NE(c.find("100,150,0,2.5"), std::string::npos);

  std::ostringstream json;
  ts.write_json(json);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"schema\": \"pcieb-telemetry-v1\""), std::string::npos);
  EXPECT_NE(j.find("\"interval_ps\": 100"), std::string::npos);
  EXPECT_NE(j.find("\"ops\""), std::string::npos);

  const std::string chrome = ts.chrome_counter_events();
  EXPECT_NE(chrome.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ops\""), std::string::npos);
  // Gauges are sampled, not counter tracks; only counters emit "C" events.
  EXPECT_EQ(chrome.find("\"level\""), std::string::npos);
}

}  // namespace
}  // namespace pcieb::obs
