// End-to-end coverage of the fault-injection subsystem (PR 2): the spec
// grammar, every fault class through the composed system, recovery
// (DLL replay, completion-timeout retry, retrain), AER attribution that
// matches the injector's tallies exactly, bit-identical determinism, and
// the watchdog turning a swallowed completion into a diagnostic instead
// of a hang.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/runner.hpp"
#include "fault/aer.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/watchdog.hpp"
#include "sim/system.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb {
namespace {

using core::BenchKind;
using core::BenchParams;
using fault::ErrorType;
using fault::FaultKind;

sim::SystemConfig faulted(const std::string& spec) {
  auto cfg = sys::netfpga_hsw().config;
  if (!spec.empty()) cfg.fault_plan = fault::parse_plan(spec);
  return cfg;
}

BenchParams lat_params(std::size_t iters) {
  BenchParams p;
  p.kind = BenchKind::LatRd;
  p.transfer_size = 64;
  p.window_bytes = 8192;
  p.cache_state = core::CacheState::HostWarm;
  p.iterations = iters;
  return p;
}

BenchParams bw_params(std::size_t iters) {
  BenchParams p;
  p.kind = BenchKind::BwWr;
  p.transfer_size = 256;
  p.window_bytes = 1 << 20;
  p.cache_state = core::CacheState::HostWarm;
  p.iterations = iters;
  return p;
}

// ---- spec grammar ----------------------------------------------------------

TEST(FaultPlanTest, ParsesEveryKindAndPredicate) {
  const auto plan = fault::parse_plan(
      "drop@nth=100,dir=down;"
      "corrupt@prob=0.001,count=5;"
      "ack-loss@every=50;"
      "poison@addr=0x1000-0x1fff;"
      "cpl-ur@time=10us-2ms;"
      "cpl-ca@nth=2;"
      "iommu@every=3;"
      "downtrain@time=50us-150us,lanes=4,gen=1");
  ASSERT_EQ(plan.rules.size(), 8u);
  EXPECT_EQ(plan.rules[0].kind, FaultKind::LinkDrop);
  EXPECT_EQ(plan.rules[0].nth, 100u);
  EXPECT_EQ(plan.rules[0].dir, fault::LinkDir::Down);
  EXPECT_EQ(plan.rules[1].kind, FaultKind::LinkCorrupt);
  EXPECT_DOUBLE_EQ(plan.rules[1].prob, 0.001);
  EXPECT_EQ(plan.rules[1].count, 5u);
  EXPECT_FALSE(plan.rules[1].deterministic());
  EXPECT_EQ(plan.rules[2].kind, FaultKind::AckLoss);
  EXPECT_EQ(plan.rules[2].every, 50u);
  EXPECT_TRUE(plan.rules[2].deterministic());
  EXPECT_EQ(plan.rules[3].addr_lo, 0x1000u);
  EXPECT_EQ(plan.rules[3].addr_hi, 0x1fffu);
  EXPECT_EQ(plan.rules[4].from, from_micros(10));
  EXPECT_EQ(plan.rules[4].until, from_millis(2));
  EXPECT_EQ(plan.rules[5].kind, FaultKind::CplCa);
  EXPECT_EQ(plan.rules[6].kind, FaultKind::IommuFault);
  EXPECT_EQ(plan.rules[7].lanes, 4u);
  EXPECT_EQ(plan.rules[7].gen, 1u);
}

TEST(FaultPlanTest, DescribeRoundTrips) {
  const std::string spec =
      "drop@nth=7,dir=up;corrupt@count=3;downtrain@lanes=2";
  const auto plan = fault::parse_plan(spec);
  const auto reparsed = fault::parse_plan(plan.describe());
  ASSERT_EQ(reparsed.rules.size(), plan.rules.size());
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    EXPECT_EQ(reparsed.rules[i].kind, plan.rules[i].kind) << i;
    EXPECT_EQ(reparsed.rules[i].nth, plan.rules[i].nth) << i;
    EXPECT_EQ(reparsed.rules[i].count, plan.rules[i].count) << i;
    EXPECT_EQ(reparsed.rules[i].dir, plan.rules[i].dir) << i;
    EXPECT_EQ(reparsed.rules[i].lanes, plan.rules[i].lanes) << i;
  }
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::parse_plan(""), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("flip"), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("drop@foo=1"), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("drop@nth=0"), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("drop@every=0"), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("corrupt@prob=1.5"), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("corrupt@prob=-0.1"), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("cpl-ur@time=5us-1us"), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("iommu@addr=8-4"), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("drop@dir=sideways"), std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("downtrain@time=1us-2us"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_plan("downtrain@gen=7"), std::invalid_argument);
}

// ---- zero-cost when unarmed ------------------------------------------------

TEST(FaultSystemTest, NoPlanMeansNoMachinery) {
  sim::System system(faulted(""));
  EXPECT_FALSE(system.faults_armed());
  EXPECT_EQ(system.fault_injector(), nullptr);
  EXPECT_EQ(system.watchdog(), nullptr);
  EXPECT_FALSE(system.device().timeouts_armed());
  EXPECT_NO_THROW(system.check_deadlock());
}

// ---- each fault class through the composed system --------------------------

TEST(FaultSystemTest, DroppedWriteLosesExactlyItsPayload) {
  sim::System system(faulted("drop@nth=600,dir=up"));
  const auto r = core::run_bandwidth_bench(system, bw_params(1000));
  EXPECT_EQ(system.upstream().dropped(), 1u);
  EXPECT_EQ(r.lost_payload_bytes, 256u);
  EXPECT_EQ(system.lost_write_bytes(), 256u);
  EXPECT_LT(r.goodput_gbps, r.gbps);
  EXPECT_EQ(system.aer().count(ErrorType::TransactionFailed), 1u);
  EXPECT_EQ(system.fault_injector()->injected(FaultKind::LinkDrop), 1u);
}

TEST(FaultSystemTest, DroppedCompletionRetriesAndRecovers) {
  sim::System system(faulted("drop@nth=1,dir=down"));
  const auto r = core::run_latency_bench(system, lat_params(20));
  auto& dev = system.device();
  EXPECT_EQ(dev.completion_timeouts(), 1u);
  EXPECT_EQ(dev.read_retries(), 1u);
  EXPECT_EQ(dev.reads_failed(), 0u);
  EXPECT_EQ(dev.reads_completed(), 20u);
  EXPECT_EQ(r.samples_ns.count(), 20u);
  EXPECT_EQ(system.aer().count(ErrorType::CompletionTimeout), 1u);
  // The retried read pays the completion timeout; the other 19 do not.
  EXPECT_GT(r.summary.max_ns,
            to_nanos(system.device().profile().completion_timeout));
}

TEST(FaultSystemTest, RetryExhaustionFailsTheReadButTerminates) {
  // Every downstream TLP is dropped: no completion can ever arrive, so
  // each read burns its retries and is failed — the run still ends, the
  // DMA op still calls done, and the loss is attributed.
  sim::System system(faulted("drop@dir=down"));
  const auto r = core::run_latency_bench(system, lat_params(3));
  auto& dev = system.device();
  const unsigned retries = dev.profile().max_read_retries;
  EXPECT_EQ(dev.reads_failed(), 3u);
  EXPECT_EQ(dev.failed_read_bytes(), 3u * 64u);
  EXPECT_EQ(dev.read_retries(), 3u * retries);
  EXPECT_EQ(dev.completion_timeouts(), 3u * (retries + 1));
  EXPECT_EQ(r.samples_ns.count(), 3u);
  EXPECT_EQ(system.aer().count(ErrorType::TransactionFailed), 3u);
  EXPECT_EQ(system.aer().count(ErrorType::CompletionTimeout),
            3u * (retries + 1));
}

TEST(FaultSystemTest, CorruptionReplaysTransparently) {
  sim::System system(faulted("corrupt@every=100,dir=up"));
  const auto r = core::run_bandwidth_bench(system, bw_params(3000));
  EXPECT_GT(system.upstream().replays(), 0u);
  EXPECT_EQ(r.lost_payload_bytes, 0u);  // DLL recovery: no data loss
  EXPECT_DOUBLE_EQ(r.goodput_gbps, r.gbps);
  EXPECT_EQ(system.aer().count(ErrorType::BadTlp),
            system.fault_injector()->injected(FaultKind::LinkCorrupt));
  EXPECT_EQ(system.aer().total(fault::ErrorSeverity::Fatal), 0u);
}

TEST(FaultSystemTest, CorruptBurstEscalatesToRetrain) {
  // count=5 NAKs one TLP five times in a row — REPLAY_NUM (4) rolls over
  // and the link retrains instead of replaying forever.
  sim::System system(faulted("corrupt@nth=1,count=5,dir=up"));
  core::run_latency_bench(system, lat_params(5));
  EXPECT_EQ(system.upstream().retrains(), 1u);
  EXPECT_EQ(system.aer().count(ErrorType::ReplayNumRollover), 1u);
}

TEST(FaultSystemTest, AckLossExpiresReplayTimer) {
  sim::System system(faulted("ack-loss@nth=10,dir=up"));
  core::run_bandwidth_bench(system, bw_params(500));
  EXPECT_EQ(system.upstream().replay_timeouts(), 1u);
  EXPECT_EQ(system.aer().count(ErrorType::ReplayTimeout), 1u);
  EXPECT_EQ(system.aer().count(ErrorType::TransactionFailed), 0u);
}

TEST(FaultSystemTest, PoisonedCompletionIsRetried) {
  sim::System system(faulted("poison@nth=1,dir=down"));
  core::run_latency_bench(system, lat_params(10));
  auto& dev = system.device();
  EXPECT_EQ(dev.poisoned_received(), 1u);
  EXPECT_GE(dev.read_retries(), 1u);
  EXPECT_EQ(dev.reads_failed(), 0u);
  EXPECT_EQ(dev.reads_completed(), 10u);
  EXPECT_EQ(system.aer().count(ErrorType::PoisonedTlp), 1u);
}

TEST(FaultSystemTest, CompleterErrorFailsFast) {
  sim::System system(faulted("cpl-ur@nth=1"));
  core::run_latency_bench(system, lat_params(10));
  auto& dev = system.device();
  EXPECT_EQ(dev.error_completions_received(), 1u);
  EXPECT_EQ(dev.reads_failed(), 1u);
  EXPECT_EQ(dev.read_retries(), 0u);  // the completer's verdict is final
  EXPECT_EQ(dev.reads_completed(), 10u);
  EXPECT_EQ(system.aer().count(ErrorType::UnsupportedRequest), 1u);
  EXPECT_EQ(system.aer().count(ErrorType::TransactionFailed), 1u);
}

TEST(FaultSystemTest, CompleterAbortReportsItsOwnCategory) {
  sim::System system(faulted("cpl-ca@nth=2"));
  core::run_latency_bench(system, lat_params(5));
  EXPECT_EQ(system.aer().count(ErrorType::CompleterAbort), 1u);
  EXPECT_EQ(system.aer().count(ErrorType::UnsupportedRequest), 0u);
  EXPECT_EQ(system.root_complex().error_completions(), 1u);
}

TEST(FaultSystemTest, IommuReadFaultBecomesUrCompletion) {
  auto cfg = sys::with_iommu(faulted("iommu@nth=1"), true, 4096);
  sim::System system(cfg);
  auto p = lat_params(10);
  p.page_bytes = 4096;
  core::run_latency_bench(system, p);
  EXPECT_EQ(system.iommu().faults(), 1u);
  EXPECT_EQ(system.device().error_completions_received(), 1u);
  EXPECT_EQ(system.device().reads_failed(), 1u);
  // Single-site attribution: the fault is logged where it was detected
  // (IommuFault), not re-counted as UR when the synthesized error
  // completion reaches the device.
  EXPECT_EQ(system.aer().count(ErrorType::IommuFault), 1u);
  EXPECT_EQ(system.aer().count(ErrorType::UnsupportedRequest), 0u);
  EXPECT_EQ(system.aer().count(ErrorType::TransactionFailed), 1u);
}

TEST(FaultSystemTest, IommuWriteFaultDropsSilentlyWithCounter) {
  auto cfg = sys::with_iommu(faulted("iommu@nth=1"), true, 4096);
  sim::System system(cfg);
  auto p = bw_params(500);
  p.page_bytes = 4096;
  const auto r = core::run_bandwidth_bench(system, p);
  EXPECT_EQ(system.iommu().faults(), 1u);
  EXPECT_EQ(system.root_complex().writes_dropped(), 1u);
  EXPECT_EQ(r.lost_payload_bytes, 256u);
  EXPECT_EQ(system.aer().count(ErrorType::IommuFault), 1u);
}

TEST(FaultSystemTest, DowntrainDegradesThenRecovers) {
  auto base = core::run_bandwidth_bench(
      *std::make_unique<sim::System>(faulted("")), bw_params(2000));
  sim::System system(faulted("downtrain@time=0us-60us,lanes=2"));
  const auto r = core::run_bandwidth_bench(system, bw_params(2000));
  EXPECT_GE(system.upstream().downtrains(), 1u);
  EXPECT_GT(r.elapsed, base.elapsed);  // x2 window slower than x8 baseline
  EXPECT_EQ(r.lost_payload_bytes, 0u);  // degraded, not lossy
  EXPECT_GE(system.aer().count(ErrorType::LinkDowntrain), 1u);
  EXPECT_GE(system.fault_injector()->injected(FaultKind::Downtrain), 1u);
}

// ---- attribution: every injected fault lands in a matching category --------

TEST(FaultSystemTest, AerCountsMatchInjectorTalliesExactly) {
  sim::System system(
      faulted("drop@nth=3,dir=down;cpl-ur@nth=5;poison@nth=9,dir=down"));
  core::run_latency_bench(system, lat_params(20));
  auto& inj = *system.fault_injector();
  const auto& aer = system.aer();
  // A dropped completion surfaces as the requester's completion timeout;
  // completer errors and poison are logged at their own category. No
  // double counting anywhere.
  EXPECT_EQ(inj.injected(FaultKind::LinkDrop), 1u);
  EXPECT_EQ(aer.count(ErrorType::CompletionTimeout), 1u);
  EXPECT_EQ(inj.injected(FaultKind::CplUr), 1u);
  EXPECT_EQ(aer.count(ErrorType::UnsupportedRequest), 1u);
  EXPECT_EQ(inj.injected(FaultKind::Poison), 1u);
  EXPECT_EQ(aer.count(ErrorType::PoisonedTlp), 1u);
  EXPECT_EQ(inj.injected_total(), 3u);
}

// ---- determinism -----------------------------------------------------------

TEST(FaultSystemTest, SameSeedSamePlanIdenticalEventSequence) {
  const std::string spec = "corrupt@prob=0.01;drop@prob=0.002,dir=up";
  auto run = [&](std::uint64_t seed) {
    auto cfg = faulted(spec);
    cfg.fault_plan.seed = seed;
    sim::System system(cfg);
    auto r = core::run_bandwidth_bench(system, bw_params(2000));
    return std::make_tuple(r.elapsed, r.lost_payload_bytes,
                           system.fault_injector()->injected_total(),
                           system.aer().records());
  };
  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  const auto& ra = std::get<3>(a);
  const auto& rb = std::get<3>(b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].ts, rb[i].ts) << i;
    EXPECT_EQ(ra[i].type, rb[i].type) << i;
    EXPECT_EQ(ra[i].addr, rb[i].addr) << i;
    EXPECT_EQ(ra[i].tag, rb[i].tag) << i;
  }
}

TEST(FaultInjectorTest, DeterministicRulesConsumeNoRandomness) {
  // Two injectors, same seed: one plan has an extra deterministic rule
  // whose predicates never match. The probabilistic draws must line up
  // anyway — deterministic misses may not perturb the stream.
  auto plan_a = fault::parse_plan("corrupt@prob=0.5");
  auto plan_b = fault::parse_plan("drop@nth=999999,dir=up;corrupt@prob=0.5");
  fault::FaultInjector a(plan_a), b(plan_b);
  proto::Tlp tlp{proto::TlpType::MemWr, 0x1000, 256, 0, 1};
  for (int i = 0; i < 200; ++i) {
    const auto da = a.on_link_tx(tlp, true, from_nanos(i));
    const auto db = b.on_link_tx(tlp, true, from_nanos(i));
    EXPECT_EQ(da.corrupt_attempts, db.corrupt_attempts) << i;
  }
  EXPECT_EQ(a.injected_total(), b.injected_total());
}

// ---- watchdog --------------------------------------------------------------

TEST(FaultWatchdogTest, SwallowedCompletionIsDiagnosedNotHung) {
  // Timeouts off (completion_timeout=0) and the only completion dropped:
  // the event queue drains with the read still outstanding. The quiescent
  // check must turn that into a WatchdogError, never a hang.
  auto cfg = faulted("drop@dir=down");
  cfg.device.completion_timeout = 0;
  sim::System system(cfg);
  EXPECT_THROW(core::run_latency_bench(system, lat_params(1)),
               fault::WatchdogError);
}

TEST(FaultWatchdogTest, QuiescentCheckNamesTheOutstandingWork) {
  auto cfg = faulted("drop@dir=down");
  cfg.device.completion_timeout = 0;
  sim::System system(cfg);
  try {
    core::run_latency_bench(system, lat_params(1));
    FAIL() << "expected WatchdogError";
  } catch (const fault::WatchdogError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("device.dma_read_ops"), std::string::npos) << what;
  }
}

TEST(FaultWatchdogTest, StallAbortsAfterThreshold) {
  fault::WatchdogConfig cfg;
  cfg.check_every_events = 1;
  cfg.stall_events = 10;
  fault::Watchdog wd(cfg);
  std::size_t executed = 0;
  // Progress keeps it alive...
  for (int i = 0; i < 50; ++i) {
    wd.kick();
    EXPECT_NO_THROW(wd.on_event(from_nanos(i), executed += 4));
  }
  // ...event churn without progress does not.
  EXPECT_THROW(
      {
        for (int i = 0; i < 20; ++i) wd.on_event(from_nanos(100), executed += 4);
      },
      fault::WatchdogError);
}

TEST(FaultWatchdogTest, SimTimeLimitAborts) {
  fault::WatchdogConfig cfg;
  cfg.check_every_events = 1;
  cfg.max_sim_time = from_micros(1);
  fault::Watchdog wd(cfg);
  EXPECT_NO_THROW(wd.on_event(from_nanos(500), 1));
  EXPECT_THROW(wd.on_event(from_micros(2), 2), fault::WatchdogError);
}

}  // namespace
}  // namespace pcieb
