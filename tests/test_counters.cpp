#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/system.hpp"

namespace pcieb::obs {
namespace {

TEST(CounterRegistryTest, RegistrationAndLookup) {
  CounterRegistry reg;
  double x = 3.0;
  reg.add_counter("a.total", [&] { return x; });
  reg.add_gauge("a.depth", [&] { return x / 2.0; });
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_TRUE(reg.contains("a.total"));
  EXPECT_FALSE(reg.contains("a.other"));
  EXPECT_DOUBLE_EQ(reg.value("a.total"), 3.0);
  EXPECT_DOUBLE_EQ(reg.value("a.depth"), 1.5);
  EXPECT_THROW(reg.value("missing"), std::out_of_range);
}

TEST(CounterRegistryTest, DuplicateAndInvalidRegistrationThrows) {
  CounterRegistry reg;
  reg.add_counter("dup", [] { return 0.0; });
  EXPECT_THROW(reg.add_counter("dup", [] { return 1.0; }),
               std::invalid_argument);
  EXPECT_THROW(reg.add_gauge("dup", [] { return 1.0; }),
               std::invalid_argument);
  EXPECT_THROW(reg.add_counter("", [] { return 0.0; }), std::invalid_argument);
  EXPECT_THROW(reg.add_counter("no-reader", CounterRegistry::Reader{}),
               std::invalid_argument);
}

TEST(CounterRegistryTest, SnapshotPullsLiveValuesInRegistrationOrder) {
  CounterRegistry reg;
  double v = 1.0;
  reg.add_counter("first", [&] { return v; });
  reg.add_gauge("second", [&] { return v * 10.0; });
  v = 7.0;
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "first");
  EXPECT_EQ(snap[0].kind, MetricKind::Counter);
  EXPECT_DOUBLE_EQ(snap[0].value, 7.0);
  EXPECT_EQ(snap[1].name, "second");
  EXPECT_EQ(snap[1].kind, MetricKind::Gauge);
  EXPECT_DOUBLE_EQ(snap[1].value, 70.0);
}

/// Run a small DMA workload on a System with registered counters and check
/// the counters only ever move up (monotonicity of "counter" kind).
TEST(CounterRegistryTest, SystemCountersAreMonotonic) {
  sim::SystemConfig cfg;
  sim::System system(cfg);
  CounterRegistry reg;
  system.register_counters(reg);
  ASSERT_GT(reg.size(), 20u);

  auto counters_only = [&] {
    std::vector<MetricSample> out;
    for (const auto& s : reg.snapshot()) {
      if (s.kind == MetricKind::Counter) out.push_back(s);
    }
    return out;
  };

  auto before = counters_only();
  for (int i = 0; i < 16; ++i) {
    system.device().dma_read(0x4000 + i * 64, 64, {});
    system.device().dma_write(0x8000 + i * 64, 64, {});
    system.sim().run();
    const auto after = counters_only();
    ASSERT_EQ(after.size(), before.size());
    for (std::size_t k = 0; k < after.size(); ++k) {
      EXPECT_GE(after[k].value, before[k].value) << after[k].name;
    }
    before = after;
  }
  EXPECT_DOUBLE_EQ(reg.value("device.reads_completed"), 16.0);
  EXPECT_DOUBLE_EQ(reg.value("device.writes_sent"), 16.0);
  EXPECT_DOUBLE_EQ(reg.value("mem.reads"), 16.0);
  EXPECT_DOUBLE_EQ(reg.value("mem.writes"), 16.0);
}

TEST(CounterRegistryTest, TableListsEveryMetric) {
  sim::SystemConfig cfg;
  sim::System system(cfg);
  CounterRegistry reg;
  system.register_counters(reg);
  const std::string table = reg.to_table();
  for (const auto& s : reg.snapshot()) {
    EXPECT_NE(table.find(s.name), std::string::npos) << s.name;
  }
}

TEST(CounterRegistryTest, CsvDumpRoundTrips) {
  CounterRegistry reg;
  reg.add_counter("x.count", [] { return 42.0; });
  reg.add_gauge("x.util", [] { return 0.25; });
  const std::string path = ::testing::TempDir() + "counters_test.csv";
  reg.write_csv(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "metric,kind,value");
  EXPECT_EQ(lines[1], "x.count,counter,42");
  EXPECT_EQ(lines[2], "x.util,gauge,0.2500");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pcieb::obs
