// Tier-2 snapshot: the recovery-ladder ablation sweep
// (bench/recovery_sweep.hpp, shared with the ablation_recovery binary)
// must reproduce the committed CSV byte-for-byte. Fault injection and the
// ladder are deterministic, so any drift is a semantic change to the
// fault or recovery machinery — this makes such a change a conscious
// decision (regenerate bench/expected/recovery_goodput.csv by running
// ./build/bench/ablation_recovery with the path as argument) rather than
// an accident. The policy=none rows pin the zero-cost contract: armed-off
// runs are bit-identical to runs with no recovery code in the loop.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "recovery_sweep.hpp"

namespace pcieb {
namespace {

std::string load_expected() {
  const std::string path =
      std::string(PCIEB_SOURCE_DIR) + "/bench/expected/recovery_goodput.csv";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(RecoveryGoodputSnapshotTest, SweepMatchesCommittedCsv) {
  const std::string expected = load_expected();
  ASSERT_FALSE(expected.empty());
  const std::string actual =
      bench::recovery_sweep_csv(bench::run_recovery_sweep());
  // Line-by-line first, so a mismatch names the offending sweep point.
  std::istringstream es(expected), as(actual);
  std::string eline, aline;
  std::size_t n = 0;
  while (std::getline(es, eline)) {
    ASSERT_TRUE(std::getline(as, aline)) << "row " << n << " missing";
    EXPECT_EQ(aline, eline) << "row " << n;
    ++n;
  }
  EXPECT_FALSE(std::getline(as, aline)) << "extra row: " << aline;
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace pcieb
