// Invariants that must hold on EVERY Table 1 system — parameterized over
// the six profiles. These are the properties the paper treats as
// universal across its host generations (§6.1: "very similar across the
// four generations of Intel processors we measured").
#include <gtest/gtest.h>

#include <cmath>

#include "core/report.hpp"
#include "core/runner.hpp"
#include "pcie/bandwidth.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb {
namespace {

using core::BenchKind;
using core::BenchParams;
using core::CacheState;

class CrossSystem : public ::testing::TestWithParam<std::string> {
 protected:
  const sys::Profile& profile() const {
    return sys::profile_by_name(GetParam());
  }

  core::LatencyResult lat(BenchKind kind, std::uint32_t sz, CacheState cs,
                          std::size_t iters = 1500) const {
    sim::System system(profile().config);
    BenchParams p;
    p.kind = kind;
    p.transfer_size = sz;
    p.window_bytes = 8192;
    p.cache_state = cs;
    p.iterations = iters;
    return core::run_latency_bench(system, p);
  }

  core::BandwidthResult bw(BenchKind kind, std::uint32_t sz,
                           std::size_t iters = 12000) const {
    sim::System system(profile().config);
    BenchParams p;
    p.kind = kind;
    p.transfer_size = sz;
    p.window_bytes = 8192;
    p.cache_state = CacheState::HostWarm;
    p.iterations = iters;
    return core::run_bandwidth_bench(system, p);
  }
};

TEST_P(CrossSystem, WarmReadsNeverSlowerThanCold) {
  const auto warm = lat(BenchKind::LatRd, 64, CacheState::HostWarm);
  const auto cold = lat(BenchKind::LatRd, 64, CacheState::Thrash);
  EXPECT_LE(warm.summary.median_ns, cold.summary.median_ns);
  EXPECT_GT(cold.summary.median_ns - warm.summary.median_ns, 40.0);
}

TEST_P(CrossSystem, WriteReadAboveReadAlone) {
  const auto rd = lat(BenchKind::LatRd, 64, CacheState::HostWarm);
  const auto wrrd = lat(BenchKind::LatWrRd, 64, CacheState::HostWarm);
  EXPECT_GT(wrrd.summary.median_ns, rd.summary.median_ns);
}

TEST_P(CrossSystem, LatencyGrowsWithTransferSize) {
  const auto small = lat(BenchKind::LatRd, 64, CacheState::HostWarm);
  const auto big = lat(BenchKind::LatRd, 2048, CacheState::HostWarm);
  EXPECT_GT(big.summary.median_ns, small.summary.median_ns + 150.0);
}

TEST_P(CrossSystem, MinIsNoGreaterThanMedian) {
  const auto r = lat(BenchKind::LatRd, 64, CacheState::HostWarm, 3000);
  EXPECT_LE(r.summary.min_ns, r.summary.median_ns);
  EXPECT_LE(r.summary.median_ns, r.summary.p95_ns);
  EXPECT_LE(r.summary.p95_ns, r.summary.p99_ns);
  EXPECT_LE(r.summary.p99_ns, r.summary.max_ns);
}

TEST_P(CrossSystem, SamplesQuantizedToDeviceCounter) {
  const auto r = lat(BenchKind::LatRd, 64, CacheState::HostWarm, 500);
  const double res = to_nanos(profile().config.device.timestamp_resolution);
  for (double v : r.samples_ns.sorted()) {
    const double ticks = v / res;
    EXPECT_NEAR(ticks, std::round(ticks), 1e-6);
  }
}

TEST_P(CrossSystem, MeasuredBandwidthNeverExceedsModel) {
  const auto& link = profile().config.link;
  for (std::uint32_t sz : {64u, 256u, 1024u}) {
    EXPECT_LE(bw(BenchKind::BwRd, sz).gbps,
              proto::effective_read_gbps(link, sz) * 1.005)
        << sz;
    EXPECT_LE(bw(BenchKind::BwWr, sz).gbps,
              proto::effective_write_gbps(link, sz) * 1.005)
        << sz;
    EXPECT_LE(bw(BenchKind::BwRdWr, sz).gbps,
              proto::effective_rdwr_gbps(link, sz) * 1.005)
        << sz;
  }
}

TEST_P(CrossSystem, LargeTransfersApproachLinkEfficiency) {
  const auto& link = profile().config.link;
  const double model = proto::effective_write_gbps(link, 2048);
  const double cap = profile().name == "NFP6000-HSW-E3"
                         ? 33.5  // the E3's write-ingest ceiling (§6.2)
                         : model * 0.93;
  EXPECT_GE(bw(BenchKind::BwWr, 2048).gbps, cap * 0.9);
  EXPECT_LE(bw(BenchKind::BwWr, 2048).gbps, model * 1.005);
}

TEST_P(CrossSystem, BandwidthRunsAreDeterministic) {
  const double a = bw(BenchKind::BwRd, 128, 6000).gbps;
  const double b = bw(BenchKind::BwRd, 128, 6000).gbps;
  EXPECT_EQ(a, b);
}

TEST_P(CrossSystem, CmdInterfaceOnlyOnNfp) {
  sim::System system(profile().config);
  BenchParams p;
  p.kind = BenchKind::LatRd;
  p.transfer_size = 8;
  p.use_cmd_if = true;
  p.iterations = 100;
  const bool is_nfp = profile().config.device.cmd_if_max_bytes > 0;
  if (is_nfp) {
    EXPECT_NO_THROW(core::run_latency_bench(system, p));
  } else {
    EXPECT_THROW(core::run_latency_bench(system, p), std::invalid_argument);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, CrossSystem,
    ::testing::Values("NFP6000-BDW", "NetFPGA-HSW", "NFP6000-HSW",
                      "NFP6000-HSW-E3", "NFP6000-IB", "NFP6000-SNB"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pcieb
