#include "nic/commodity.hpp"

#include <gtest/gtest.h>

#include "sysconfig/profiles.hpp"

namespace pcieb::nic {
namespace {

sim::SystemConfig host() { return sys::nfp6000_snb().config; }

CommodityProbeResult probe(std::uint64_t window, bool warm,
                           CommodityProbeConfig::Mode mode =
                               CommodityProbeConfig::Mode::VaryTx) {
  sim::System system(host());
  CommodityProbeConfig cfg;
  cfg.window_bytes = window;
  cfg.warm = warm;
  cfg.mode = mode;
  cfg.iterations = 1500;
  return run_commodity_probe(system, cfg);
}

TEST(CommodityProbeTest, ProducesRequestedSamples) {
  const auto r = probe(8192, true);
  EXPECT_EQ(r.per_packet.count, 1500u);
  EXPECT_GT(r.per_packet.median_ns, 0.0);
}

TEST(CommodityProbeTest, FreelistAccountingIsOffByDefaultAndZeroCost) {
  // Unarmed probes report no drops, and arming the accounting changes
  // nothing about the measurement itself — same samples, same latency.
  const auto plain = probe(8192, true);
  EXPECT_EQ(plain.rx_dropped, 0u);

  sim::System system(host());
  CommodityProbeConfig cfg;
  cfg.window_bytes = 8192;
  cfg.iterations = 1500;
  cfg.freelist_slots = 4;  // per-packet service ~1 µs >> 4 frame times
  const auto armed = run_commodity_probe(system, cfg);
  EXPECT_GT(armed.rx_dropped, 0u);
  EXPECT_DOUBLE_EQ(armed.per_packet.median_ns, plain.per_packet.median_ns);
  EXPECT_EQ(armed.per_packet.count, plain.per_packet.count);

  // A freelist deeper than the service time's worth of arrivals loses
  // nothing — the §5.5 probe only drops when the host is the bottleneck.
  sim::System deep_sys(host());
  cfg.freelist_slots = 4096;
  const auto deep = run_commodity_probe(deep_sys, cfg);
  EXPECT_EQ(deep.rx_dropped, 0u);
}

TEST(CommodityProbeTest, VaryTxExposesCacheResidency) {
  // §6.3 through the commodity lens: warm windows are ~70 ns faster.
  const auto warm = probe(64 << 10, true);
  const auto cold = probe(64 << 10, false);
  EXPECT_NEAR(cold.per_packet.median_ns - warm.per_packet.median_ns, 70.0,
              30.0);
}

TEST(CommodityProbeTest, WarmBenefitVanishesPastLlc) {
  const auto small = probe(64 << 10, true);
  const auto huge = probe(64ull << 20, true);
  EXPECT_GT(huge.per_packet.median_ns, small.per_packet.median_ns + 40.0);
}

TEST(CommodityProbeTest, VaryRxIsCacheInsensitive) {
  // Writes land in DDIO regardless of residency, so the RX-varied mode
  // shows no warm/cold contrast in small windows.
  const auto warm = probe(64 << 10, true, CommodityProbeConfig::Mode::VaryRx);
  const auto cold = probe(64 << 10, false, CommodityProbeConfig::Mode::VaryRx);
  EXPECT_NEAR(warm.per_packet.median_ns, cold.per_packet.median_ns, 25.0);
}

TEST(CommodityProbeTest, BaselineFarAboveProgrammableBench) {
  // The descriptor transfers and the wire loop put the commodity baseline
  // far above a programmable device's LAT_RD — the §5.5 accuracy caveat.
  const auto r = probe(8192, true);
  EXPECT_GT(r.per_packet.median_ns, 1500.0);
  EXPECT_GT(r.descriptor_overhead_ns, 0.0);
}

TEST(CommodityProbeTest, DeterministicPerSeed) {
  const auto a = probe(8192, true);
  const auto b = probe(8192, true);
  EXPECT_EQ(a.per_packet.median_ns, b.per_packet.median_ns);
  EXPECT_EQ(a.per_packet.max_ns, b.per_packet.max_ns);
}

}  // namespace
}  // namespace pcieb::nic
