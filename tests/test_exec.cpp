// Unit tests for the src/exec job-execution layer: outcome
// classification, backoff, the crash-safe journal, forked workers under
// deadlines and RSS budgets (driven by the test-only CrashHook), and the
// retry/quarantine pool.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "exec/backoff.hpp"
#include "exec/crash_hook.hpp"
#include "exec/journal.hpp"
#include "exec/outcome.hpp"
#include "exec/pool.hpp"
#include "exec/worker.hpp"

namespace fs = std::filesystem;
using namespace pcieb;

namespace {

/// A fresh scratch/journal directory removed on scope exit.
struct TempDir {
  std::string path = exec::make_temp_dir("pcieb-exec-test-");
  ~TempDir() { fs::remove_all(path); }
};

}  // namespace

TEST(Outcome, KindNamesRoundTrip) {
  using exec::OutcomeKind;
  for (auto k : {OutcomeKind::Ok, OutcomeKind::NonzeroExit, OutcomeKind::Signal,
                 OutcomeKind::Timeout, OutcomeKind::Oom}) {
    EXPECT_EQ(exec::outcome_kind_from_string(exec::to_string(k)), k);
  }
  EXPECT_THROW(exec::outcome_kind_from_string("bogus"), std::invalid_argument);
}

TEST(Outcome, Classify) {
  exec::Outcome o;
  EXPECT_EQ(o.classify(), "ok");
  o.kind = exec::OutcomeKind::NonzeroExit;
  o.exit_code = 3;
  EXPECT_EQ(o.classify(), "exit(3)");
  o.kind = exec::OutcomeKind::Signal;
  o.term_signal = SIGSEGV;
  EXPECT_EQ(o.classify(), "signal(SIGSEGV)");
  o.kind = exec::OutcomeKind::Timeout;
  EXPECT_EQ(o.classify(), "timeout");
  o.kind = exec::OutcomeKind::Oom;
  EXPECT_EQ(o.classify(), "oom");
}

TEST(Backoff, GrowsThenSaturates) {
  exec::Backoff b;
  b.initial_seconds = 0.1;
  b.cap_seconds = 0.5;
  b.factor = 2.0;
  EXPECT_DOUBLE_EQ(b.delay_seconds(0), 0.1);
  EXPECT_DOUBLE_EQ(b.delay_seconds(1), 0.2);
  EXPECT_DOUBLE_EQ(b.delay_seconds(2), 0.4);
  EXPECT_DOUBLE_EQ(b.delay_seconds(3), 0.5);
  EXPECT_DOUBLE_EQ(b.delay_seconds(30), 0.5);
}

TEST(Journal, RoundTripsRecordsIncludingNewlines) {
  TempDir tmp;
  exec::Journal journal(tmp.path);
  journal.append(0, "plain");
  journal.append(7, "multi\nline\r\nwith\\backslash");
  journal.append(3, "");
  const auto loaded = exec::Journal::load(tmp.path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.at(0), "plain");
  EXPECT_EQ(loaded.at(7), "multi\nline\r\nwith\\backslash");
  EXPECT_EQ(loaded.at(3), "");
}

TEST(Journal, OverwritingARecordKeepsTheLastValue) {
  TempDir tmp;
  exec::Journal journal(tmp.path);
  journal.append(4, "first");
  journal.append(4, "second");
  EXPECT_EQ(exec::Journal::load(tmp.path).at(4), "second");
}

TEST(Journal, IgnoresTornAndForeignFiles) {
  TempDir tmp;
  exec::Journal journal(tmp.path);
  journal.append(1, "good");
  // A torn write leaves a .tmp behind; unrelated files can share the dir.
  std::ofstream(tmp.path + "/r00000002.rec.tmp") << "torn";
  std::ofstream(tmp.path + "/notes.txt") << "not a record";
  std::ofstream(tmp.path + "/rXY.rec") << "bad digits";
  const auto loaded = exec::Journal::load(tmp.path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.at(1), "good");
}

TEST(Journal, LoadOfAbsentDirectoryIsEmpty) {
  EXPECT_TRUE(exec::Journal::load("/nonexistent/pcieb-journal").empty());
}

TEST(Journal, EscapeRoundTrip) {
  const std::string nasty = "a\\b\nc\rd\\ne\\\\";
  EXPECT_EQ(exec::unescape_line(exec::escape_line(nasty)), nasty);
  EXPECT_EQ(exec::escape_line("x\ny").find('\n'), std::string::npos);
}

TEST(CrashHook, ParsesRulesAndWildcard) {
  const auto hook = exec::CrashHook::parse("segv@3;hang@5;oom@*");
  EXPECT_EQ(hook.action_for(3), exec::CrashHook::Action::Segv);
  EXPECT_EQ(hook.action_for(5), exec::CrashHook::Action::Hang);
  // First matching rule wins; the wildcard catches everything else.
  EXPECT_EQ(hook.action_for(0), exec::CrashHook::Action::Oom);
  EXPECT_EQ(hook.action_for(99), exec::CrashHook::Action::Oom);
  EXPECT_TRUE(exec::CrashHook::parse("").empty());
  EXPECT_EQ(exec::CrashHook::parse("segv@1").action_for(2),
            exec::CrashHook::Action::None);
}

TEST(CrashHook, RejectsMalformedSpecs) {
  EXPECT_THROW(exec::CrashHook::parse("explode@1"), std::invalid_argument);
  EXPECT_THROW(exec::CrashHook::parse("segv"), std::invalid_argument);
  EXPECT_THROW(exec::CrashHook::parse("segv@xyz"), std::invalid_argument);
}

TEST(Worker, OkJobReturnsPayloadAndAttempt) {
  TempDir tmp;
  exec::Limits limits;
  const auto out = exec::run_job(
      1, 2, [](unsigned attempt) { return "payload-" + std::to_string(attempt); },
      limits, tmp.path + "/w");
  ASSERT_TRUE(out.ok()) << out.classify();
  EXPECT_EQ(out.payload, "payload-2");
  EXPECT_GT(out.wall_seconds, 0.0);
}

TEST(Worker, ThrowingJobIsNonzeroExitWithStderrTail) {
  TempDir tmp;
  exec::Limits limits;
  const auto out = exec::run_job(
      1, 0,
      [](unsigned) -> std::string {
        throw std::runtime_error("deliberate test failure");
      },
      limits, tmp.path + "/w");
  EXPECT_EQ(out.kind, exec::OutcomeKind::NonzeroExit);
  EXPECT_EQ(out.exit_code, 1);
  EXPECT_NE(out.stderr_tail.find("deliberate test failure"),
            std::string::npos);
}

TEST(Worker, SegfaultClassifiedAsSignal) {
  TempDir tmp;
  exec::Limits limits;
  const auto out = exec::run_job(
      1, 0,
      [](unsigned) -> std::string {
        exec::CrashHook::fire(exec::CrashHook::Action::Segv);
        return "unreachable";
      },
      limits, tmp.path + "/w");
  EXPECT_EQ(out.kind, exec::OutcomeKind::Signal);
  EXPECT_EQ(out.term_signal, SIGSEGV);
  EXPECT_EQ(out.classify(), "signal(SIGSEGV)");
}

TEST(Worker, HangKilledAtDeadlineAsTimeout) {
  TempDir tmp;
  exec::Limits limits;
  limits.wall_seconds = 0.3;
  const auto out = exec::run_job(
      1, 0,
      [](unsigned) -> std::string {
        exec::CrashHook::fire(exec::CrashHook::Action::Hang);
        return "unreachable";
      },
      limits, tmp.path + "/w");
  EXPECT_EQ(out.kind, exec::OutcomeKind::Timeout);
  EXPECT_GE(out.wall_seconds, 0.3);
}

TEST(Worker, RssBudgetBreachClassifiedAsOom) {
  TempDir tmp;
  exec::Limits limits;
  limits.wall_seconds = 30.0;
  // Budget a margin above the current footprint the forked child inherits.
  limits.rss_bytes = exec::own_rss_bytes() + (128ull << 20);
  const auto out = exec::run_job(
      1, 0,
      [](unsigned) -> std::string {
        exec::CrashHook::fire(exec::CrashHook::Action::Oom);
        return "unreachable";
      },
      limits, tmp.path + "/w");
  EXPECT_EQ(out.kind, exec::OutcomeKind::Oom);
}

TEST(Pool, RetriesUntilAJobSucceeds) {
  TempDir tmp;
  exec::PoolConfig cfg;
  cfg.jobs = 2;
  cfg.max_retries = 3;
  cfg.backoff.initial_seconds = 0.01;
  cfg.backoff.cap_seconds = 0.02;
  cfg.scratch_dir = tmp.path;
  std::vector<exec::JobSpec> specs(2);
  specs[0].id = 0;
  specs[0].name = "flaky";
  // The worker is a fresh fork each attempt, so "fail the first two
  // attempts" must key off the attempt number, not parent-side state.
  specs[0].fn = [](unsigned attempt) -> std::string {
    if (attempt < 2) throw std::runtime_error("not yet");
    return "ok-after-retries";
  };
  specs[1].id = 1;
  specs[1].name = "steady";
  specs[1].fn = [](unsigned) { return std::string("steady-result"); };

  const auto results = exec::run_jobs(cfg, specs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, 0u);  // input order, not completion order
  EXPECT_FALSE(results[0].quarantined);
  EXPECT_EQ(results[0].attempts, 3u);
  EXPECT_EQ(results[0].outcome.payload, "ok-after-retries");
  EXPECT_EQ(results[1].outcome.payload, "steady-result");
  EXPECT_EQ(results[1].attempts, 1u);
}

TEST(Pool, QuarantinesAfterExhaustingRetries) {
  TempDir tmp;
  exec::PoolConfig cfg;
  cfg.max_retries = 1;
  cfg.backoff.initial_seconds = 0.01;
  cfg.scratch_dir = tmp.path;
  std::vector<exec::JobSpec> specs(1);
  specs[0].id = 9;
  specs[0].name = "doomed";
  specs[0].fn = [](unsigned) -> std::string {
    exec::CrashHook::fire(exec::CrashHook::Action::Segv);
    return "unreachable";
  };
  std::size_t observed = 0;
  const auto results =
      exec::run_jobs(cfg, specs, [&](const exec::JobResult&) { ++observed; });
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].quarantined);
  EXPECT_EQ(results[0].attempts, 2u);  // first attempt + one retry
  EXPECT_EQ(results[0].outcome.kind, exec::OutcomeKind::Signal);
  EXPECT_EQ(observed, 1u);
}

TEST(Pool, EmptyBatchIsANoOp) {
  TempDir tmp;
  exec::PoolConfig cfg;
  cfg.scratch_dir = tmp.path;
  EXPECT_TRUE(exec::run_jobs(cfg, {}).empty());
}
