#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "model/interaction.hpp"
#include "model/nic_models.hpp"
#include "nic/frame.hpp"
#include "nic/loopback.hpp"
#include "nic/nic_sim.hpp"
#include "nic/ring.hpp"
#include "pcie/bandwidth.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb::nic {
namespace {

TEST(FrameTest, WireOverheadIs24Bytes) {
  EXPECT_EQ(wire_bytes(60), 84u);
  EXPECT_EQ(wire_bytes(1514), 1538u);
}

TEST(FrameTest, WireTimeAnchor) {
  // 128 B frame at 40G: (128+24)*8/40 = 30.4 ns.
  EXPECT_EQ(wire_time(128, 40.0), from_nanos(30.4));
}

TEST(DescriptorRingTest, PostConsumeCycle) {
  DescriptorRing ring(8, 16);
  EXPECT_EQ(ring.free_slots(), 8u);
  EXPECT_EQ(ring.post(5), 5u);
  EXPECT_EQ(ring.pending(), 5u);
  EXPECT_EQ(ring.consume(3), 3u);
  EXPECT_EQ(ring.pending(), 2u);
  EXPECT_EQ(ring.free_slots(), 6u);
}

TEST(DescriptorRingTest, PostSaturatesAtCapacity) {
  DescriptorRing ring(4, 16);
  EXPECT_EQ(ring.post(10), 4u);
  EXPECT_EQ(ring.post(1), 0u);
}

TEST(DescriptorRingTest, ConsumeLimitedToPending) {
  DescriptorRing ring(4, 16);
  ring.post(2);
  EXPECT_EQ(ring.consume(10), 2u);
  EXPECT_EQ(ring.consume(1), 0u);
}

TEST(DescriptorRingTest, MonotonicTotals) {
  DescriptorRing ring(4, 16);
  ring.post(4);
  ring.consume(4);
  ring.post(4);
  EXPECT_EQ(ring.total_posted(), 8u);
  EXPECT_EQ(ring.total_consumed(), 4u);
}

TEST(DescriptorRingTest, ZeroSlotsThrows) {
  EXPECT_THROW(DescriptorRing(0, 16), std::invalid_argument);
}

TEST(DescriptorRingTest, ZeroDescriptorBytesThrows) {
  // Regression: a zero-byte descriptor made every ring DMA zero-length —
  // the occupancy protocol "worked" while nothing crossed the link.
  EXPECT_THROW(DescriptorRing(8, 0), std::invalid_argument);
}

TEST(DescriptorRingTest, MaxPendingTracksHighWatermark) {
  DescriptorRing ring(8, 16);
  ring.post(3);
  ring.consume(3);
  ring.post(6);
  EXPECT_EQ(ring.max_pending(), 6u);
  ring.consume(6);
  EXPECT_EQ(ring.max_pending(), 6u);  // watermark never decays
}

// Property: under any randomized post/consume sequence the occupancy
// protocol holds — pending never exceeds slots, pending + free == slots,
// post/consume return values match the index deltas, and the watermark
// dominates every observed occupancy.
TEST(DescriptorRingTest, RandomizedSequencePreservesInvariants) {
  std::mt19937_64 rng(0xdecafbad);
  for (int round = 0; round < 8; ++round) {
    const std::uint32_t slots = 1u + static_cast<std::uint32_t>(rng() % 512);
    DescriptorRing ring(slots, 16);
    std::uint64_t posted = 0, consumed = 0;
    std::uint32_t peak = 0;
    for (int step = 0; step < 4000; ++step) {
      const std::uint32_t n = static_cast<std::uint32_t>(rng() % 64);
      if (rng() & 1) {
        const std::uint32_t fit = ring.post(n);
        ASSERT_LE(fit, n);
        posted += fit;
      } else {
        const std::uint32_t took = ring.consume(n);
        ASSERT_LE(took, n);
        consumed += took;
      }
      ASSERT_LE(ring.pending(), slots);
      ASSERT_EQ(ring.pending() + ring.free_slots(), slots);
      ASSERT_EQ(ring.total_posted(), posted);
      ASSERT_EQ(ring.total_consumed(), consumed);
      ASSERT_EQ(ring.pending(), posted - consumed);
      peak = std::max(peak, ring.pending());
      ASSERT_EQ(ring.max_pending(), peak);
    }
  }
}

// Property: the monotonic u64 producer/consumer indices survive past
// 2^32 descriptors — the u32 occupancy arithmetic must keep working
// when the 32-bit truncation of either index has wrapped.
TEST(DescriptorRingTest, IndicesSurvivePastFourBillionDescriptors) {
  const std::uint32_t slots = 1u << 20;
  DescriptorRing ring(slots, 16);
  const std::uint64_t rounds = (1ull << 32) / slots + 2;  // > 2^32 total
  for (std::uint64_t i = 0; i < rounds; ++i) {
    ASSERT_EQ(ring.post(slots), slots);
    ASSERT_EQ(ring.pending(), slots);
    ASSERT_EQ(ring.consume(slots), slots);
    ASSERT_EQ(ring.pending(), 0u);
  }
  EXPECT_GT(ring.total_posted(), 1ull << 32);
  EXPECT_EQ(ring.total_posted(), ring.total_consumed());
  EXPECT_EQ(ring.free_slots(), slots);
  EXPECT_EQ(ring.max_pending(), slots);
}

// ---- loopback (Fig 2) -------------------------------------------------------

TEST(LoopbackTest, PcieDominatesSmallPackets) {
  // Fig 2: PCIe contributes ~90 % of NIC latency for small packets.
  sim::System system(sys::netfpga_hsw().config);
  LoopbackConfig cfg;
  cfg.frame_bytes = 64;
  cfg.iterations = 400;
  auto r = run_loopback(system, cfg);
  EXPECT_GT(r.pcie_fraction, 0.80);
  EXPECT_LT(r.pcie_fraction, 0.97);
}

TEST(LoopbackTest, PcieShareFallsWithPacketSize) {
  double prev = 1.0;
  for (std::uint32_t f : {64u, 512u, 1514u}) {
    sim::System system(sys::netfpga_hsw().config);
    LoopbackConfig cfg;
    cfg.frame_bytes = f;
    cfg.iterations = 300;
    auto r = run_loopback(system, cfg);
    EXPECT_LT(r.pcie_fraction, prev) << f;
    prev = r.pcie_fraction;
  }
  EXPECT_GT(prev, 0.5);  // still the majority at 1514 B (paper: 77 %)
}

TEST(LoopbackTest, TotalLatencyAroundAMicrosecondAt128B) {
  // Fig 2: round trip for a 128 B payload is ~1000 ns.
  sim::System system(sys::netfpga_hsw().config);
  LoopbackConfig cfg;
  cfg.frame_bytes = 128;
  cfg.iterations = 400;
  auto r = run_loopback(system, cfg);
  EXPECT_GT(r.total.median_ns, 600.0);
  EXPECT_LT(r.total.median_ns, 1300.0);
}

TEST(LoopbackTest, LatencyGrowsWithPacketSize) {
  sim::System a(sys::netfpga_hsw().config);
  LoopbackConfig small;
  small.frame_bytes = 64;
  small.iterations = 200;
  sim::System b(sys::netfpga_hsw().config);
  LoopbackConfig big;
  big.frame_bytes = 1514;
  big.iterations = 200;
  EXPECT_GT(run_loopback(b, big).total.median_ns,
            run_loopback(a, small).total.median_ns + 500.0);
}

// ---- full NIC datapath simulation vs the Fig 1 analytic models -------------

NicSimResult simulate(NicSimConfig cfg, std::uint32_t frame,
                      std::uint64_t packets = 6000) {
  sim::System system(sys::netfpga_hsw().config);
  cfg.frame_bytes = frame;
  cfg.packets = packets;
  return run_nic_sim(system, cfg);
}

TEST(NicSimTest, PresetsReflectDriverDesign) {
  const auto simple = NicSimConfig::simple();
  EXPECT_EQ(simple.desc_batch, 1u);
  EXPECT_EQ(simple.irq_moderation, 1u);
  const auto dpdk = NicSimConfig::modern_dpdk();
  EXPECT_EQ(dpdk.irq_moderation, 0u);
  EXPECT_FALSE(dpdk.mmio_status_reads);
}

TEST(NicSimTest, OrderingMatchesFigureOne) {
  for (std::uint32_t frame : {64u, 256u}) {
    const auto s = simulate(NicSimConfig::simple(), frame);
    const auto k = simulate(NicSimConfig::modern_kernel(), frame);
    const auto d = simulate(NicSimConfig::modern_dpdk(), frame);
    EXPECT_LT(s.tx_goodput_gbps, k.tx_goodput_gbps) << frame;
    EXPECT_LT(k.tx_goodput_gbps, d.tx_goodput_gbps) << frame;
  }
}

TEST(NicSimTest, TxTracksAnalyticModelForModernNics) {
  const auto link = proto::gen3_x8();
  // At 64 B the executable datapath is additionally bounded by the DMA
  // engine's read tags — an effect the byte-accounting model ignores — so
  // the tolerance is wider than at 256 B.
  const double model64 =
      model::bidirectional_goodput_gbps(link, model::modern_nic_dpdk(), 64);
  const auto sim64 = simulate(NicSimConfig::modern_dpdk(), 64);
  EXPECT_NEAR(sim64.tx_goodput_gbps, model64, model64 * 0.30);

  const double model256 =
      model::bidirectional_goodput_gbps(link, model::modern_nic_kernel(), 256);
  const auto sim256 = simulate(NicSimConfig::modern_kernel(), 256);
  EXPECT_NEAR(sim256.tx_goodput_gbps, model256, model256 * 0.15);
}

TEST(NicSimTest, RxCappedByWireLineRate) {
  // Offered load is 40G line rate; delivery can match but never beat it.
  const auto r = simulate(NicSimConfig::modern_dpdk(), 1024);
  const double offered = proto::ethernet_pcie_demand_gbps(40.0, 1024);
  EXPECT_LE(r.rx_goodput_gbps, offered * 1.02);
  EXPECT_GT(r.rx_goodput_gbps, offered * 0.95);
}

TEST(NicSimTest, SimpleNicDropsSmallPacketsHeavily) {
  // The §2 story: a simple NIC cannot sustain line rate below 512 B, so
  // the freelist starves and arrivals drop far more than on a modern NIC
  // (both are PCIe-bound at 64 B, but the simple NIC much more so).
  const auto simple = simulate(NicSimConfig::simple(), 64);
  const auto dpdk = simulate(NicSimConfig::modern_dpdk(), 64);
  EXPECT_GT(simple.rx_dropped,
            3 * std::max<std::uint64_t>(dpdk.rx_dropped, 1) / 2);
  EXPECT_LT(simple.rx_goodput_gbps, dpdk.rx_goodput_gbps);
}

TEST(NicSimTest, LargeFramesDontDropOnModernNic) {
  const auto r = simulate(NicSimConfig::modern_dpdk(), 1024);
  EXPECT_LT(r.rx_dropped, 60u);  // transient fill only
}

TEST(NicSimTest, PerDirectionIsMinOfTxRx) {
  const auto r = simulate(NicSimConfig::modern_kernel(), 256);
  EXPECT_DOUBLE_EQ(r.per_direction_goodput_gbps,
                   std::min(r.tx_goodput_gbps, r.rx_goodput_gbps));
}

TEST(NicSimTest, RingWatermarksAreBoundedAndExercised) {
  const auto cfg = NicSimConfig::modern_dpdk();
  const auto r = simulate(cfg, 256);
  EXPECT_GT(r.tx_ring_max_pending, 0u);
  EXPECT_LE(r.tx_ring_max_pending, cfg.ring_slots);
  EXPECT_GT(r.rx_ring_max_pending, 0u);
  EXPECT_LE(r.rx_ring_max_pending, cfg.ring_slots);
  // The saturating TX driver keeps its ring essentially full.
  EXPECT_GE(r.tx_ring_max_pending, cfg.ring_slots / 2);
}

}  // namespace
}  // namespace pcieb::nic
