#include "pcie/bandwidth.hpp"

#include <gtest/gtest.h>

#include "pcie/link_config.hpp"

namespace pcieb::proto {
namespace {

TEST(EffectiveBandwidth, WriteHandComputedValues) {
  const LinkConfig cfg = gen3_x8();
  // 64 B write: 64/(64+24) of the TLP-layer rate.
  EXPECT_NEAR(effective_write_gbps(cfg, 64),
              cfg.tlp_gbps() * 64.0 / 88.0, 0.01);
  // 256 B: 256/280.
  EXPECT_NEAR(effective_write_gbps(cfg, 256),
              cfg.tlp_gbps() * 256.0 / 280.0, 0.01);
}

TEST(EffectiveBandwidth, ReadIsCompletionBoundAtSmallSizes) {
  const LinkConfig cfg = gen3_x8();
  // 64 B read: downstream CplD 84 B per 64 B payload binds.
  EXPECT_NEAR(effective_read_gbps(cfg, 64), cfg.tlp_gbps() * 64.0 / 84.0, 0.01);
}

TEST(EffectiveBandwidth, SawToothAtMpsBoundary) {
  const LinkConfig cfg = gen3_x8();
  const double at_mps = effective_write_gbps(cfg, 256);
  const double above_mps = effective_write_gbps(cfg, 257);
  EXPECT_GT(at_mps, above_mps);  // extra header for 1 extra byte
  // And it recovers as the second TLP fills.
  EXPECT_GT(effective_write_gbps(cfg, 512), above_mps);
}

TEST(EffectiveBandwidth, ReadSawToothAtMrrsBoundary) {
  const LinkConfig cfg = gen3_x8();
  EXPECT_GT(effective_read_gbps(cfg, 512), effective_read_gbps(cfg, 513));
}

TEST(EffectiveBandwidth, RdwrBelowBothSingles) {
  const LinkConfig cfg = gen3_x8();
  for (std::uint32_t sz : {64u, 256u, 1024u}) {
    const double rdwr = effective_rdwr_gbps(cfg, sz);
    EXPECT_LT(rdwr, effective_write_gbps(cfg, sz));
    EXPECT_LE(rdwr, effective_read_gbps(cfg, sz) + 0.01);
  }
}

TEST(EffectiveBandwidth, RdwrMatchesFigureOneAnchors) {
  // Fig 1 "Effective PCIe BW": ~33 Gb/s at 64 B rising to ~50 Gb/s at
  // 1280 B ("PCIe protocol overheads reduce the usable bandwidth to
  // around 50 Gb/s", §2).
  const LinkConfig cfg = gen3_x8();
  EXPECT_NEAR(effective_rdwr_gbps(cfg, 64), 33.1, 0.5);
  EXPECT_NEAR(effective_rdwr_gbps(cfg, 1280), 50.4, 0.7);
}

TEST(EffectiveBandwidth, MonotoneOverallTrend) {
  const LinkConfig cfg = gen3_x8();
  // Compare across full-MPS multiples where the saw-tooth peaks.
  double prev = 0.0;
  for (std::uint32_t sz = 256; sz <= 4096; sz += 256) {
    const double g = effective_write_gbps(cfg, sz);
    EXPECT_GE(g, prev - 1e-9) << "sz=" << sz;
    prev = g;
  }
}

TEST(EffectiveBandwidth, NeverExceedsTlpRate) {
  const LinkConfig cfg = gen3_x8();
  for (std::uint32_t sz = 1; sz <= 8192; sz *= 2) {
    EXPECT_LT(effective_write_gbps(cfg, sz), cfg.tlp_gbps());
    EXPECT_LT(effective_read_gbps(cfg, sz), cfg.tlp_gbps());
    EXPECT_LT(effective_rdwr_gbps(cfg, sz), cfg.tlp_gbps());
  }
}

TEST(EthernetDemand, AnchorsAt40G) {
  // 40GbE needs 40 * sz/(sz+24) Gb/s of PCIe payload.
  EXPECT_NEAR(ethernet_pcie_demand_gbps(40.0, 64), 29.09, 0.01);
  EXPECT_NEAR(ethernet_pcie_demand_gbps(40.0, 512), 38.21, 0.01);
  EXPECT_NEAR(ethernet_pcie_demand_gbps(40.0, 1500), 39.37, 0.01);
  EXPECT_EQ(ethernet_pcie_demand_gbps(40.0, 0), 0.0);
}

TEST(EthernetDemand, ApproachesWireRateForLargeFrames) {
  EXPECT_LT(ethernet_pcie_demand_gbps(40.0, 9000), 40.0);
  EXPECT_GT(ethernet_pcie_demand_gbps(40.0, 9000), 39.8);
}

class WriteBwSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WriteBwSweep, UnalignedWritesNeverBeatAligned) {
  const LinkConfig cfg = gen3_x8();
  const std::uint32_t sz = GetParam();
  EXPECT_LE(effective_write_gbps(cfg, sz, 63),
            effective_write_gbps(cfg, sz, 0) + 1e-9);
}

TEST_P(WriteBwSweep, UnalignedReadsNeverBeatAligned) {
  const LinkConfig cfg = gen3_x8();
  const std::uint32_t sz = GetParam();
  EXPECT_LE(effective_read_gbps(cfg, sz, 63),
            effective_read_gbps(cfg, sz, 0) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WriteBwSweep,
                         ::testing::Values(64, 128, 256, 512, 1024, 1500,
                                           2048, 4096));

}  // namespace
}  // namespace pcieb::proto
