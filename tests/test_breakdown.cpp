#include "obs/latency_breakdown.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/observe.hpp"
#include "core/params.hpp"
#include "core/runner.hpp"
#include "model/latency_budget.hpp"
#include "sim/system.hpp"

namespace pcieb {
namespace {

core::BenchParams lat_params(std::uint32_t size) {
  core::BenchParams p;
  p.kind = core::BenchKind::LatRd;
  p.transfer_size = size;
  p.window_bytes = 8192;
  p.cache_state = core::CacheState::HostWarm;
  p.iterations = 300;
  p.warmup = 50;
  p.seed = 7;
  return p;
}

obs::BreakdownReport run_with_breakdown(sim::System& system,
                                        const core::BenchParams& p) {
  core::ObsSession::Options opts;
  opts.breakdown = true;
  core::ObsSession obs(system, opts);
  core::run_latency_bench(system, p);
  return obs.breakdown_report();
}

double stage_mean(const obs::BreakdownReport& r, const char* name) {
  for (const auto& row : r.stages) {
    if (row.stage == name) return row.mean_ns;
  }
  ADD_FAILURE() << "no stage " << name;
  return -1.0;
}

// The telescoping-milestone design makes the per-stage means sum to the
// end-to-end mean exactly — the property that turns the breakdown from a
// suggestive table into a checkable account.
TEST(BreakdownTest, StageMeansSumToEndToEndMean) {
  sim::SystemConfig cfg;  // jitter-free defaults
  sim::System system(cfg);
  const auto r = run_with_breakdown(system, lat_params(64));
  ASSERT_EQ(r.transactions, 300u);  // warmup excluded via BenchPhase reset
  EXPECT_EQ(r.skipped_overlapped, 0u);
  EXPECT_NEAR(r.stage_sum_mean_ns, r.end_to_end_mean_ns, 1e-6);
  EXPECT_GT(r.end_to_end_mean_ns, 0.0);
}

// On a jitter-free system every stage must equal the model's §3 budget —
// the simulator and the analytical model are two derivations of the same
// pipeline, so their disagreement would flag a modelling bug.
TEST(BreakdownTest, WarmReadMatchesModelStageBudget) {
  sim::SystemConfig cfg;
  sim::System system(cfg);
  const auto params = lat_params(64);
  const auto r = run_with_breakdown(system, params);

  const auto budget = model::dma_read_stage_budget(
      core::stage_budget_inputs(cfg, params), params.offset,
      params.transfer_size);
  EXPECT_NEAR(stage_mean(r, "device_issue"), budget.device_issue_ns, 1e-6);
  EXPECT_NEAR(stage_mean(r, "link_up"), budget.link_up_ns, 1e-6);
  EXPECT_NEAR(stage_mean(r, "rc_pipeline"), budget.rc_pipeline_ns, 1e-6);
  EXPECT_NEAR(stage_mean(r, "iommu"), budget.iommu_ns, 1e-6);
  EXPECT_NEAR(stage_mean(r, "order_wait"), budget.order_wait_ns, 1e-6);
  EXPECT_NEAR(stage_mean(r, "memory_llc"), budget.memory_llc_ns, 1e-6);
  EXPECT_NEAR(stage_mean(r, "memory_dram"), budget.memory_dram_ns, 1e-6);
  EXPECT_NEAR(stage_mean(r, "link_down"), budget.link_down_ns, 1e-6);
  EXPECT_NEAR(stage_mean(r, "device_done"), budget.device_done_ns, 1e-6);
  EXPECT_NEAR(r.end_to_end_mean_ns, budget.total_ns(), 1e-6);
}

// Cold cache: DMA reads never allocate, so every iteration misses and the
// whole memory span lands in the DRAM stage (the §6.3 ~70 ns delta plus
// the DRAM transfer itself).
TEST(BreakdownTest, ColdReadShiftsMemoryTimeToDramStage) {
  sim::SystemConfig cfg;
  sim::System system(cfg);
  auto params = lat_params(64);
  params.cache_state = core::CacheState::Thrash;
  const auto r = run_with_breakdown(system, params);

  const auto budget = model::dma_read_stage_budget(
      core::stage_budget_inputs(cfg, params), params.offset,
      params.transfer_size);
  EXPECT_TRUE(budget.memory_llc_ns == 0.0);
  EXPECT_NEAR(stage_mean(r, "memory_llc"), 0.0, 1e-9);
  EXPECT_NEAR(stage_mean(r, "memory_dram"), budget.memory_dram_ns, 1e-6);
  EXPECT_GT(budget.memory_dram_ns, to_nanos(cfg.mem.dram_extra));
  EXPECT_NEAR(r.end_to_end_mean_ns, budget.total_ns(), 1e-6);
}

// LAT_WRRD: the read queues behind its paired posted write at the root
// complex; that wait must surface in order_wait, and the telescoping
// property must survive the concurrent write traffic.
TEST(BreakdownTest, WriteReadPairShowsOrderingWait) {
  sim::SystemConfig cfg;
  sim::System system(cfg);
  auto params = lat_params(64);
  params.kind = core::BenchKind::LatWrRd;
  const auto r = run_with_breakdown(system, params);
  ASSERT_EQ(r.transactions, 300u);
  EXPECT_NEAR(r.stage_sum_mean_ns, r.end_to_end_mean_ns, 1e-6);
  EXPECT_GT(stage_mean(r, "order_wait"), 0.0);
}

// Bandwidth runs keep ~tag-limit reads in flight; attribution would be
// ambiguous, so overlapped reads are skipped and counted, never guessed.
TEST(BreakdownTest, OverlappedReadsAreSkippedNotMisattributed) {
  sim::SystemConfig cfg;
  sim::System system(cfg);
  core::BenchParams p;
  p.kind = core::BenchKind::BwRd;
  p.transfer_size = 64;
  p.window_bytes = 8192;
  p.iterations = 2000;
  core::ObsSession::Options opts;
  opts.breakdown = true;
  core::ObsSession obs(system, opts);
  core::run_bandwidth_bench(system, p);
  const auto r = obs.breakdown_report();
  EXPECT_GT(r.skipped_overlapped, 0u);
  EXPECT_LE(r.transactions + r.skipped_overlapped, 2000u);
}

// Oversized transfers (several read requests in flight for one DMA) fall
// outside the model's single-request budget — the model must say so
// rather than return a wrong prediction.
TEST(BreakdownTest, BudgetRejectsMultiRequestSizes) {
  sim::SystemConfig cfg;
  const auto params = lat_params(2048);  // > MRRS 512
  EXPECT_THROW(model::dma_read_stage_budget(
                   core::stage_budget_inputs(cfg, params), 0, 2048),
               std::invalid_argument);
}

}  // namespace
}  // namespace pcieb
