#include "pcie/tlp.hpp"

#include <gtest/gtest.h>

namespace pcieb::proto {
namespace {

TEST(TlpHeaders, TypeSpecificSizes) {
  EXPECT_EQ(type_header_bytes(TlpType::MemWr, true), 12u);
  EXPECT_EQ(type_header_bytes(TlpType::MemWr, false), 8u);
  EXPECT_EQ(type_header_bytes(TlpType::MemRd, true), 12u);
  EXPECT_EQ(type_header_bytes(TlpType::CplD, true), 8u);
  EXPECT_EQ(type_header_bytes(TlpType::Cpl, false), 8u);
}

TEST(TlpHeaders, PaperOverheadNumbers) {
  // §3: MWr_Hdr and MRd_Hdr are 24 B (2 framing + 6 DLL + 4 TLP common +
  // 12 type header); CplD_Hdr is 20 B.
  const LinkConfig cfg = gen3_x8();
  EXPECT_EQ(overhead_bytes(TlpType::MemWr, cfg), 24u);
  EXPECT_EQ(overhead_bytes(TlpType::MemRd, cfg), 24u);
  EXPECT_EQ(overhead_bytes(TlpType::CplD, cfg), 20u);
}

TEST(TlpHeaders, Addr32ShrinksMemHeaders) {
  LinkConfig cfg = gen3_x8();
  cfg.addr64 = false;
  EXPECT_EQ(overhead_bytes(TlpType::MemWr, cfg), 20u);
  EXPECT_EQ(overhead_bytes(TlpType::CplD, cfg), 20u);  // unchanged
}

TEST(TlpHeaders, EcrcAddsFourBytes) {
  LinkConfig cfg = gen3_x8();
  cfg.ecrc = true;
  EXPECT_EQ(overhead_bytes(TlpType::MemWr, cfg), 28u);
  EXPECT_EQ(overhead_bytes(TlpType::CplD, cfg), 24u);
}

TEST(TlpWire, WriteWireBytes) {
  const LinkConfig cfg = gen3_x8();
  Tlp w{TlpType::MemWr, 0x1000, 256, 0, 0};
  EXPECT_EQ(w.wire_bytes(cfg), 280u);
}

TEST(TlpWire, ReadRequestCarriesNoPayload) {
  const LinkConfig cfg = gen3_x8();
  Tlp r{TlpType::MemRd, 0x1000, 0, 512, 0};
  EXPECT_EQ(r.wire_bytes(cfg), 24u);
}

TEST(TlpStrings, Names) {
  EXPECT_STREQ(to_string(TlpType::MemRd), "MRd");
  EXPECT_STREQ(to_string(TlpType::MemWr), "MWr");
  EXPECT_STREQ(to_string(TlpType::CplD), "CplD");
  EXPECT_STREQ(to_string(TlpType::Cpl), "Cpl");
}

TEST(TlpStrings, DescribeIncludesFields) {
  Tlp t{TlpType::MemRd, 0xabc, 0, 64, 7};
  const std::string d = t.describe();
  EXPECT_NE(d.find("MRd"), std::string::npos);
  EXPECT_NE(d.find("abc"), std::string::npos);
  EXPECT_NE(d.find("tag=7"), std::string::npos);
}

}  // namespace
}  // namespace pcieb::proto
