// The perf-regression harness (check/perf.hpp). Rates depend on the
// machine, so the assertions pin what is machine-independent: the exact
// event and TLP counts of each workload (the simulator is deterministic,
// so any drift means the model changed — the same invariant
// tools/ci_perf_check.sh enforces in CI), the report structure, and the
// JSON serialization.
#include "check/perf.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pcieb::check {
namespace {

// Quick-mode totals (iterations cut 10x). Updating these is a deliberate
// act: it means the simulated workload itself changed. Keep them in sync
// with tools/ci_perf_check.sh.
constexpr std::uint64_t kQuickFig04Events = 222600;
constexpr std::uint64_t kQuickFig05Events = 214400;
constexpr std::uint64_t kQuickChaosEvents = 194023;

TEST(PerfHarness, QuickRunHasExactEventCounts) {
  PerfConfig cfg;
  cfg.quick = true;
  const PerfReport report = run_perf(cfg);
  EXPECT_TRUE(report.quick);
  ASSERT_EQ(report.workloads.size(), 3u);

  const auto* fig04 = report.find("fig04_bw_sweep");
  const auto* fig05 = report.find("fig05_latency");
  const auto* chaos = report.find("chaos_dry_run");
  ASSERT_NE(fig04, nullptr);
  ASSERT_NE(fig05, nullptr);
  ASSERT_NE(chaos, nullptr);

  EXPECT_EQ(fig04->events, kQuickFig04Events);
  EXPECT_EQ(fig05->events, kQuickFig05Events);
  EXPECT_EQ(chaos->events, kQuickChaosEvents);
  for (const auto& w : report.workloads) {
    EXPECT_GT(w.tlps, 0u) << w.name;
    EXPECT_GT(w.wall_seconds, 0.0) << w.name;
    EXPECT_GT(w.events_per_sec, 0.0) << w.name;
    EXPECT_GT(w.ns_per_tlp, 0.0) << w.name;
  }
  EXPECT_GT(report.fig04_speedup_vs_baseline, 0.0);
  EXPECT_EQ(report.baseline_events_per_sec, kBaselineEventsPerSec);
}

TEST(PerfHarness, JsonAndSummaryCarryEveryWorkload) {
  PerfReport report;
  report.quick = true;
  report.workloads.push_back({"fig04_bw_sweep", 100, 10, 0.5, 200.0, 7.5});
  report.workloads.push_back({"chaos_dry_run", 300, 30, 1.5, 200.0, 9.5});
  report.fig04_speedup_vs_baseline = 1.25;

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\": \"pcieb-perf-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"quick\": true"), std::string::npos);
  EXPECT_NE(json.find("\"fig04_bw_sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"chaos_dry_run\""), std::string::npos);
  EXPECT_NE(json.find("\"fig04_speedup_vs_baseline\": 1.2500"),
            std::string::npos);

  const std::string text = report.summary();
  EXPECT_NE(text.find("fig04_bw_sweep"), std::string::npos);
  EXPECT_NE(text.find("speedup 1.25x"), std::string::npos);

  EXPECT_EQ(report.find("nope"), nullptr);
}

}  // namespace
}  // namespace pcieb::check
