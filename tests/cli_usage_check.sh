#!/usr/bin/env bash
# Strict CLI validation for the telemetry/profiler flags: every malformed
# spelling must exit 2 with a diagnostic on stderr (never run the bench,
# never exit 0/1/3), and the well-formed spellings must be accepted. Run
# by CTest as `cli_usage`; takes the pciebench path as $1.
set -u

PCIEBENCH="${1:?usage: cli_usage_check.sh <path-to-pciebench>}"
fail=0

# expect_usage <description> -- <args...>: exit code 2 + stderr diagnostic.
expect_usage() {
    local desc="$1"; shift
    [[ "$1" == "--" ]] && shift
    local err
    err=$("$PCIEBENCH" "$@" 2>&1 >/dev/null)
    local code=$?
    if [[ $code -ne 2 ]]; then
        echo "FAIL($desc): exit $code, want 2: pciebench $*" >&2
        fail=1
    elif [[ -z "$err" ]]; then
        echo "FAIL($desc): exit 2 but no diagnostic on stderr" >&2
        fail=1
    else
        echo "   ok($desc): exit 2, '$(head -1 <<<"$err")'"
    fi
}

# expect_ok <description> -- <args...>: exit code 0.
expect_ok() {
    local desc="$1"; shift
    [[ "$1" == "--" ]] && shift
    if ! "$PCIEBENCH" "$@" >/dev/null 2>&1; then
        echo "FAIL($desc): nonzero exit: pciebench $*" >&2
        fail=1
    else
        echo "   ok($desc): accepted"
    fi
}

RUN=(run --system NFP6000-HSW --bench LAT_RD --iters 50 --warmup 10)

expect_usage "no command"          --
expect_usage "unknown option"      -- run --telemetrie
expect_usage "empty telemetry file" -- "${RUN[@]}" --telemetry=
expect_usage "interval w/o telemetry" -- "${RUN[@]}" --telemetry-interval 1000
expect_usage "zero interval"       -- "${RUN[@]}" --telemetry --telemetry-interval 0
expect_usage "non-numeric interval" -- "${RUN[@]}" --telemetry --telemetry-interval xyz
expect_usage "missing interval value" -- "${RUN[@]}" --telemetry --telemetry-interval
expect_usage "profile takes no value" -- perf --quick --profile=on
expect_usage "chaos empty telemetry file" -- chaos --trials 1 --telemetry=
expect_usage "suite telemetry bad spelling" -- suite --telemetry --bogus
expect_usage "unknown recovery policy"  -- "${RUN[@]}" --recovery turbo
expect_usage "recovery bad override"    -- "${RUN[@]}" --recovery default,flux=1
expect_usage "recovery none w/override" -- "${RUN[@]}" --recovery none,lanes=2
expect_usage "recovery bad time unit"   -- "${RUN[@]}" --recovery default,holdoff=5parsecs
expect_usage "chaos unknown recovery"   -- chaos --trials 1 --recovery bogus

# Multi-tenant flags (docs/ISOLATION.md): strict range and dependency
# validation, on run and chaos alike.
expect_usage "zero tenants"            -- "${RUN[@]}" --tenants 0
expect_usage "too many tenants"        -- "${RUN[@]}" --tenants 65
expect_usage "non-numeric tenants"     -- "${RUN[@]}" --tenants lots
expect_usage "attacker out of range"   -- "${RUN[@]}" --tenants 4 --attacker 4
expect_usage "attacker w/o tenants"    -- "${RUN[@]}" --attacker 1
expect_usage "isolation w/o tenants"   -- "${RUN[@]}" --isolation weakened
expect_usage "unknown isolation mode"  -- "${RUN[@]}" --tenants 4 --isolation bogus
expect_usage "weights w/o tenants"     -- "${RUN[@]}" --weights 1,2
expect_usage "weights size mismatch"   -- "${RUN[@]}" --tenants 4 --weights 1,2
expect_usage "zero weight"             -- "${RUN[@]}" --tenants 2 --weights 1,0
expect_usage "malformed weights list"  -- "${RUN[@]}" --tenants 2 --weights 1,,2
expect_usage "non-numeric weight"      -- "${RUN[@]}" --tenants 2 --weights 1,heavy
expect_usage "quota w/o tenants"       -- "${RUN[@]}" --ddio-quota 2,2
expect_usage "quota size mismatch"     -- "${RUN[@]}" --tenants 4 --ddio-quota 2
expect_usage "tenants with trace"      -- "${RUN[@]}" --tenants 2 --trace /tmp/t.csv
expect_usage "tenants with telemetry"  -- "${RUN[@]}" --tenants 2 --telemetry
expect_usage "chaos zero tenants"      -- chaos --trials 1 --tenants 0
expect_usage "chaos attacker range"    -- chaos --trials 1 --tenants 4 --attacker 9
expect_usage "chaos weights rejected"  -- chaos --trials 1 --tenants 4 --weights 1,1,1,1
expect_usage "chaos quota rejected"    -- chaos --trials 1 --tenants 4 --ddio-quota 2,2,2,2
expect_usage "chaos bad isolation"     -- chaos --trials 1 --tenants 4 --isolation tight

# Overload flags (docs/OVERLOAD.md): the dedicated subcommand and the
# chaos riders both validate strictly.
expect_usage "overload needs system"      -- overload
expect_usage "overload unknown option"    -- overload --system NFP6000-HSW --offered-loda 2
expect_usage "overload zero load"         -- overload --system NFP6000-HSW --offered-load 0
expect_usage "overload non-numeric load"  -- overload --system NFP6000-HSW --offered-load heavy
expect_usage "overload bad service mode"  -- overload --system NFP6000-HSW --service-mode napi
expect_usage "overload bad backpressure"  -- overload --system NFP6000-HSW --backpressure maybe
expect_usage "overload bad arrivals"      -- overload --system NFP6000-HSW --arrivals uniform
expect_usage "overload zero frames"       -- overload --system NFP6000-HSW --frames 0
expect_usage "overload tiny frame"        -- overload --system NFP6000-HSW --frame 32
expect_usage "chaos zero offered load"    -- chaos --trials 1 --offered-load 0
expect_usage "chaos service w/o load"     -- chaos --trials 1 --service-mode poll
expect_usage "chaos bp w/o load"          -- chaos --trials 1 --backpressure on
expect_usage "chaos bad backpressure"     -- chaos --trials 1 --offered-load 2 --backpressure sometimes
expect_usage "chaos overload + tenants"   -- chaos --trials 1 --offered-load 2 --tenants 2

expect_ok "bare telemetry to stdout" -- "${RUN[@]}" --telemetry
expect_ok "telemetry to file" -- "${RUN[@]}" --telemetry="$(mktemp -u /tmp/pcieb-usage-XXXXXX.csv)"
expect_ok "telemetry with interval" -- "${RUN[@]}" --telemetry --telemetry-interval 500000
expect_ok "chaos with telemetry" -- chaos --trials 2 --iters 50 --telemetry
expect_ok "recovery named policy" -- "${RUN[@]}" --recovery aggressive
expect_ok "recovery with overrides" -- "${RUN[@]}" --recovery default,max-resets=3,holdoff=20us
expect_ok "chaos recovery + throw-monitors" -- chaos --trials 2 --iters 50 --recovery default --throw-monitors
expect_ok "tenant run" -- run --system NFP6000-HSW --bench BW_WR --iters 50 --tenants 2
expect_ok "tenant run full knobs" -- run --system NFP6000-HSW --bench BW_WR --iters 50 --tenants 4 --attacker 1 --isolation weakened --weights 2,1,1,1 --ddio-quota 2,2,2,2
expect_ok "tenant chaos" -- chaos --trials 2 --iters 50 --tenants 2 --attacker 0
expect_ok "overload quick run" -- overload --system NFP6000-HSW --offered-load 2 --frames 400 --capacity-pps 2000000
expect_ok "overload coalesce bp monitors" -- overload --system NFP6000-HSW --offered-load 2 --service-mode coalesce --backpressure on --frames 400 --capacity-pps 2000000 --monitors
expect_ok "overload chaos" -- chaos --trials 2 --iters 200 --offered-load 2 --service-mode coalesce --backpressure on

exit $fail
