#include "sim/root_complex.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pcieb::sim {
namespace {

struct Fixture {
  proto::LinkConfig link_cfg = proto::gen3_x8();
  Simulator sim;
  Link downstream{sim, link_cfg, from_nanos(10)};
  MemorySystem mem;
  Iommu iommu{sim, IommuConfig{}};
  RootComplex rc;

  Fixture()
      : mem(sim, CacheConfig{}, MemoryConfig{}, JitterModel::none(), 1),
        rc(sim, link_cfg, RootComplexConfig{}, mem, iommu, downstream) {}

  proto::Tlp mwr(std::uint64_t addr, std::uint32_t payload) {
    return proto::Tlp{proto::TlpType::MemWr, addr, payload, 0, 0};
  }
  proto::Tlp mrd(std::uint64_t addr, std::uint32_t len, std::uint32_t tag) {
    return proto::Tlp{proto::TlpType::MemRd, addr, 0, len, tag};
  }
};

TEST(RootComplexTest, ReadGeneratesCompletions) {
  Fixture f;
  std::vector<proto::Tlp> cpls;
  f.downstream.set_deliver([&](const proto::Tlp& t) { cpls.push_back(t); });
  f.rc.on_upstream(f.mrd(0x1000, 512, 7));
  f.sim.run();
  // 512 B with MPS 256, aligned: two CplD TLPs tagged like the request.
  ASSERT_EQ(cpls.size(), 2u);
  EXPECT_EQ(cpls[0].payload + cpls[1].payload, 512u);
  EXPECT_EQ(cpls[0].tag, 7u);
  EXPECT_EQ(cpls[1].tag, 7u);
  EXPECT_EQ(f.rc.reads_handled(), 1u);
}

TEST(RootComplexTest, WriteCommitsAndCountsBytes) {
  Fixture f;
  std::uint32_t committed = 0;
  f.rc.set_write_commit_hook([&](std::uint32_t b) { committed += b; });
  f.rc.on_upstream(f.mwr(0x2000, 256));
  f.sim.run();
  EXPECT_EQ(committed, 256u);
  EXPECT_EQ(f.rc.writes_committed(), 1u);
  EXPECT_EQ(f.rc.write_bytes_committed(), 256u);
}

TEST(RootComplexTest, ReadDoesNotPassEarlierWrite) {
  // LAT_WRRD's foundation (§4.1): the root complex handles the read after
  // the write.
  Fixture f;
  Picos write_done = -1;
  Picos cpl_sent = -1;
  f.rc.set_write_commit_hook([&](std::uint32_t) { write_done = f.sim.now(); });
  f.downstream.set_deliver([&](const proto::Tlp&) { cpl_sent = f.sim.now(); });
  f.rc.on_upstream(f.mwr(0x3000, 64));
  f.rc.on_upstream(f.mrd(0x3000, 64, 1));
  f.sim.run();
  ASSERT_GE(write_done, 0);
  ASSERT_GE(cpl_sent, 0);
  EXPECT_GT(cpl_sent, write_done);
}

TEST(RootComplexTest, ReadAfterWriteSeesWarmLine) {
  Fixture f;
  int fetch_hits_before = 0;
  f.rc.on_upstream(f.mwr(0x4000, 64));
  f.sim.run();
  fetch_hits_before = static_cast<int>(f.mem.cache().hits());
  f.rc.on_upstream(f.mrd(0x4000, 64, 2));
  f.sim.run();
  EXPECT_GT(static_cast<int>(f.mem.cache().hits()), fetch_hits_before);
}

TEST(RootComplexTest, IndependentReadProceedsWithoutWrites) {
  Fixture f;
  Picos cpl_sent = -1;
  f.downstream.set_deliver([&](const proto::Tlp&) { cpl_sent = f.sim.now(); });
  f.rc.on_upstream(f.mrd(0x5000, 64, 3));
  f.sim.run();
  EXPECT_GE(cpl_sent, 0);
}

TEST(RootComplexTest, MultipleWritesAllCommitBeforeLaterRead) {
  Fixture f;
  std::size_t commits_at_cpl = 0;
  f.downstream.set_deliver([&](const proto::Tlp&) {
    commits_at_cpl = f.rc.writes_committed();
  });
  for (int i = 0; i < 5; ++i) f.rc.on_upstream(f.mwr(0x6000 + i * 64, 64));
  f.rc.on_upstream(f.mrd(0x6000, 64, 4));
  f.sim.run();
  EXPECT_EQ(commits_at_cpl, 5u);
}

TEST(RootComplexTest, LocalityResolverControlsNumaPath) {
  Fixture f;
  Picos local_done = -1;
  f.downstream.set_deliver([&](const proto::Tlp&) { local_done = f.sim.now(); });
  f.rc.on_upstream(f.mrd(0x7000, 64, 5));
  f.sim.run();

  Fixture g;
  g.rc.set_locality_resolver([](std::uint64_t) { return false; });
  Picos remote_done = -1;
  g.downstream.set_deliver([&](const proto::Tlp&) { remote_done = g.sim.now(); });
  g.rc.on_upstream(g.mrd(0x7000, 64, 5));
  g.sim.run();
  EXPECT_GT(remote_done, local_done);
}

TEST(RootComplexTest, CompletionsArriveAtRequestOrderPerTag) {
  Fixture f;
  std::vector<std::uint32_t> tags;
  f.downstream.set_deliver([&](const proto::Tlp& t) { tags.push_back(t.tag); });
  f.rc.on_upstream(f.mrd(0x8000, 64, 10));
  f.rc.on_upstream(f.mrd(0x9000, 64, 11));
  f.sim.run();
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0], 10u);
  EXPECT_EQ(tags[1], 11u);
}

TEST(RootComplexTest, SingleReadEmitsExpectedTraceSequence) {
  // One 64 B DMA read through root complex + memory must produce exactly
  // the lifecycle the observability docs promise: arrival, pipeline span,
  // LLC probe, full memory span — in that order, with consistent times.
  Fixture f;
  obs::TraceSink sink;
  f.rc.set_trace(&sink);
  f.mem.set_trace(&sink);
  f.iommu.set_trace(&sink);
  f.downstream.set_deliver([](const proto::Tlp&) {});
  f.rc.on_upstream(f.mrd(0xA000, 64, 9));
  f.sim.run();

  const auto events = sink.events();
  std::vector<obs::EventKind> kinds;
  for (const auto& e : events) kinds.push_back(e.kind);
  // Cold cache: the probe misses, so a DRAM access sits inside the memory
  // span. IOMMU disabled: no translation events.
  const std::vector<obs::EventKind> expected = {
      obs::EventKind::RcRx, obs::EventKind::RcPipeline,
      obs::EventKind::LlcLookup, obs::EventKind::DramRead,
      obs::EventKind::MemRead};
  ASSERT_EQ(kinds, expected);

  EXPECT_EQ(events[0].ts, 0);            // arrival
  EXPECT_EQ(events[1].ts, 0);            // pipeline starts immediately...
  EXPECT_GT(events[1].dur, 0);           // ...and is a span
  EXPECT_EQ(events[2].ts, events[1].end());  // LLC probe after the pipeline
  EXPECT_EQ(events[2].flags, 1u);            // flagged as a miss
  EXPECT_EQ(events[4].ts, events[2].ts);     // memory span opens at the probe
  EXPECT_GT(events[4].dur, 0);
  // The DRAM leg nests inside the memory span.
  EXPECT_GE(events[3].ts, events[4].ts);
  EXPECT_EQ(events[3].end(), events[4].end());
  for (const auto& e : events) {
    EXPECT_EQ(e.addr, 0xA000u);
    EXPECT_EQ(e.len, 64u);
  }
  EXPECT_EQ(events[0].id, 9u);  // RcRx carries the TLP tag
}

TEST(RootComplexTest, UpstreamCompletionsAreIgnored) {
  Fixture f;
  proto::Tlp cpl{proto::TlpType::CplD, 0, 64, 0, 0};
  EXPECT_NO_THROW(f.rc.on_upstream(cpl));
  f.sim.run();
  EXPECT_EQ(f.rc.reads_handled(), 0u);
}

}  // namespace
}  // namespace pcieb::sim
