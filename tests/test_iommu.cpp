#include "sim/iommu.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace pcieb::sim {
namespace {

IommuConfig enabled_cfg() {
  IommuConfig cfg;
  cfg.enabled = true;
  cfg.tlb_entries = 4;
  cfg.page_bytes = 4096;
  cfg.walkers = 2;
  cfg.walk_latency = from_nanos(330);
  cfg.walk_occupancy_read = from_nanos(330);
  cfg.walk_occupancy_write = from_nanos(165);
  return cfg;
}

Picos translate_at(Simulator& sim, Iommu& iommu, std::uint64_t addr,
                   bool is_write = false) {
  Picos done = -1;
  iommu.translate(addr, is_write, [&] { done = sim.now(); });
  sim.run();
  return done;
}

TEST(IommuTest, DisabledIsFree) {
  Simulator sim;
  Iommu iommu(sim, IommuConfig{});
  EXPECT_EQ(translate_at(sim, iommu, 0x1234), 0);
  EXPECT_EQ(iommu.tlb_misses(), 0u);
}

TEST(IommuTest, FirstAccessWalks) {
  Simulator sim;
  Iommu iommu(sim, enabled_cfg());
  EXPECT_EQ(translate_at(sim, iommu, 0x1000), from_nanos(330));
  EXPECT_EQ(iommu.tlb_misses(), 1u);
}

TEST(IommuTest, SecondAccessSamePageHits) {
  Simulator sim;
  Iommu iommu(sim, enabled_cfg());
  translate_at(sim, iommu, 0x1000);
  const Picos before = sim.now();
  Picos done = -1;
  iommu.translate(0x1a00, false, [&] { done = sim.now(); });  // same page
  sim.run();
  EXPECT_EQ(done, before);  // no walk, no added latency
  EXPECT_EQ(iommu.tlb_hits(), 1u);
}

TEST(IommuTest, LruEviction) {
  Simulator sim;
  Iommu iommu(sim, enabled_cfg());  // 4 entries
  for (std::uint64_t p = 0; p < 5; ++p) {
    translate_at(sim, iommu, p * 4096);  // fills and evicts page 0
  }
  iommu.reset_stats();
  translate_at(sim, iommu, 0);  // page 0 was evicted
  EXPECT_EQ(iommu.tlb_misses(), 1u);
  iommu.reset_stats();
  translate_at(sim, iommu, 4 * 4096);  // page 4 still resident
  EXPECT_EQ(iommu.tlb_hits(), 1u);
}

TEST(IommuTest, LruRefreshOnHit) {
  Simulator sim;
  Iommu iommu(sim, enabled_cfg());
  for (std::uint64_t p = 0; p < 4; ++p) translate_at(sim, iommu, p * 4096);
  translate_at(sim, iommu, 0);           // refresh page 0
  translate_at(sim, iommu, 100 * 4096);  // evicts page 1 (now LRU), not 0
  iommu.reset_stats();
  translate_at(sim, iommu, 0);
  EXPECT_EQ(iommu.tlb_hits(), 1u);
  iommu.reset_stats();
  translate_at(sim, iommu, 4096);
  EXPECT_EQ(iommu.tlb_misses(), 1u);
}

TEST(IommuTest, WalkerPoolBoundsThroughput) {
  Simulator sim;
  Iommu iommu(sim, enabled_cfg());  // 2 walkers, 330 ns occupancy
  int done = 0;
  for (std::uint64_t p = 0; p < 6; ++p) {
    iommu.translate(p * 4096, false, [&] { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 6);
  // 6 misses on 2 walkers at 330 ns -> three serialized rounds.
  EXPECT_EQ(sim.now(), from_nanos(3 * 330));
}

TEST(IommuTest, WriteWalksOccupyLess) {
  // Writes hold a walker for half the time, so a stream of write misses
  // finishes sooner than the same stream of read misses.
  Simulator sim_rd;
  Iommu iommu_rd(sim_rd, enabled_cfg());
  for (std::uint64_t p = 0; p < 8; ++p) {
    iommu_rd.translate(p * 4096, false, [] {});
  }
  sim_rd.run();

  Simulator sim_wr;
  Iommu iommu_wr(sim_wr, enabled_cfg());
  for (std::uint64_t p = 0; p < 8; ++p) {
    iommu_wr.translate(p * 4096, true, [] {});
  }
  sim_wr.run();
  EXPECT_LT(sim_wr.now(), sim_rd.now());
}

TEST(IommuTest, SuperpagesCollapseFootprint) {
  IommuConfig cfg = enabled_cfg();
  cfg.page_bytes = 2ull << 20;  // 2 MB superpages
  Simulator sim;
  Iommu iommu(sim, cfg);
  // 64 distinct 4 KB-page addresses inside one superpage: one walk total.
  for (std::uint64_t p = 0; p < 64; ++p) translate_at(sim, iommu, p * 4096);
  EXPECT_EQ(iommu.tlb_misses(), 1u);
  EXPECT_EQ(iommu.tlb_hits(), 63u);
}

TEST(IommuTest, FlushForcesRewalk) {
  Simulator sim;
  Iommu iommu(sim, enabled_cfg());
  translate_at(sim, iommu, 0x1000);
  iommu.flush_tlb();
  iommu.reset_stats();
  translate_at(sim, iommu, 0x1000);
  EXPECT_EQ(iommu.tlb_misses(), 1u);
}

TEST(IommuTest, EnabledZeroStructuresThrow) {
  IommuConfig cfg = enabled_cfg();
  cfg.tlb_entries = 0;
  Simulator sim;
  EXPECT_THROW(Iommu(sim, cfg), std::invalid_argument);
}

TEST(IommuTest, ConcurrentMissesOnSamePageInsertOnce) {
  Simulator sim;
  Iommu iommu(sim, enabled_cfg());
  int done = 0;
  iommu.translate(0x1000, false, [&] { ++done; });
  iommu.translate(0x1000, false, [&] { ++done; });  // racing walk, same page
  sim.run();
  EXPECT_EQ(done, 2);
  iommu.reset_stats();
  translate_at(sim, iommu, 0x1000);
  EXPECT_EQ(iommu.tlb_hits(), 1u);
}

// --- Multi-domain (SR-IOV) tests: docs/ISOLATION.md -----------------------

void translate_dom(Simulator& sim, Iommu& iommu, unsigned domain,
                   std::uint64_t addr) {
  bool ok = false;
  iommu.translate_checked(addr, /*is_write=*/false, domain,
                          [&](bool o) { ok = o; });
  sim.run();
  EXPECT_TRUE(ok);
}

TEST(IommuDomainTest, PerDomainHitMissAccounting) {
  Simulator sim;
  Iommu iommu(sim, enabled_cfg());
  iommu.configure_domains(2, /*partitioned=*/true);
  translate_dom(sim, iommu, 0, 0x1000);  // miss (cold)
  translate_dom(sim, iommu, 0, 0x1000);  // hit
  translate_dom(sim, iommu, 1, 0x5000);  // miss in the other domain
  EXPECT_EQ(iommu.domain_stats(0).misses, 1u);
  EXPECT_EQ(iommu.domain_stats(0).hits, 1u);
  EXPECT_EQ(iommu.domain_stats(1).misses, 1u);
  EXPECT_EQ(iommu.domain_stats(1).hits, 0u);
  // Global counters stay the sum of the domains.
  EXPECT_EQ(iommu.tlb_misses(), 2u);
  EXPECT_EQ(iommu.tlb_hits(), 1u);
}

TEST(IommuDomainTest, RemapDomainFlushesOnlyThatDomain) {
  Simulator sim;
  Iommu iommu(sim, enabled_cfg());
  iommu.configure_domains(2, /*partitioned=*/true);
  translate_dom(sim, iommu, 0, 0x1000);
  translate_dom(sim, iommu, 1, 0x1000);
  const std::uint64_t global_before = iommu.remaps();
  iommu.remap_domain(0);  // VF 0 FLR: only its mappings are rebuilt
  EXPECT_EQ(iommu.domain_stats(0).remaps, 1u);
  EXPECT_EQ(iommu.domain_stats(1).remaps, 0u);
  EXPECT_EQ(iommu.remaps(), global_before + 1);
  iommu.reset_stats();
  translate_dom(sim, iommu, 0, 0x1000);  // stale: walks again
  translate_dom(sim, iommu, 1, 0x1000);  // untouched: still cached
  EXPECT_EQ(iommu.domain_stats(0).misses, 1u);
  EXPECT_EQ(iommu.domain_stats(1).hits, 1u);
  EXPECT_EQ(iommu.domain_stats(1).misses, 0u);
  // remaps persist across reset_stats, like the global counter.
  EXPECT_EQ(iommu.domain_stats(0).remaps, 1u);
}

// Property: a translation cached by one domain NEVER satisfies another
// domain's lookup — in partitioned mode (separate structures) and in
// shared mode (one pool, composite keys) alike, even for identical pages.
TEST(IommuDomainTest, NoTranslationResolvesAcrossDomains) {
  for (const bool partitioned : {true, false}) {
    Simulator sim;
    IommuConfig cfg = enabled_cfg();
    cfg.tlb_entries = 64;  // no capacity evictions during the property run
    Iommu iommu(sim, cfg);
    iommu.configure_domains(4, partitioned);
    Xoshiro256 rng(0xd04a);
    for (int trial = 0; trial < 200; ++trial) {
      const std::uint64_t page = rng.below(8);  // heavy page collisions
      const unsigned owner = static_cast<unsigned>(rng.below(4));
      const unsigned other = (owner + 1 + rng.below(3)) % 4;
      const std::uint64_t addr = page * 4096;
      iommu.reset_stats();
      translate_dom(sim, iommu, owner, addr);   // warm owner's domain
      translate_dom(sim, iommu, owner, addr);   // sanity: owner now hits
      ASSERT_EQ(iommu.domain_stats(owner).hits, 1u);
      const std::uint64_t other_misses = iommu.domain_stats(other).misses;
      const std::uint64_t other_hits = iommu.domain_stats(other).hits;
      translate_dom(sim, iommu, other, addr);   // must walk, never hit
      ASSERT_EQ(iommu.domain_stats(other).hits, other_hits)
          << "cross-domain TLB hit (partitioned=" << partitioned << ")";
      ASSERT_EQ(iommu.domain_stats(other).misses, other_misses + 1);
      iommu.flush_tlb();
    }
  }
}

TEST(IommuDomainTest, PartitioningContainsEvictionStorms) {
  // tlb_entries=4 split across 2 domains = 2-entry slices. The attacker
  // domain storms 8 distinct pages; the victim's cached page survives in
  // partitioned mode and is evicted in shared mode.
  for (const bool partitioned : {true, false}) {
    Simulator sim;
    Iommu iommu(sim, enabled_cfg());
    iommu.configure_domains(2, partitioned);
    translate_dom(sim, iommu, 1, 0x1000);  // victim caches its page
    for (std::uint64_t p = 0; p < 8; ++p) {
      translate_dom(sim, iommu, 0, 0x100000 + p * 4096);  // attacker storm
    }
    iommu.reset_stats();
    translate_dom(sim, iommu, 1, 0x1000);
    if (partitioned) {
      EXPECT_EQ(iommu.domain_stats(1).hits, 1u) << "victim entry evicted";
    } else {
      EXPECT_EQ(iommu.domain_stats(1).misses, 1u)
          << "shared pool should have evicted the victim entry";
    }
  }
}

}  // namespace
}  // namespace pcieb::sim
