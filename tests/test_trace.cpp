#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "sim/system.hpp"

namespace pcieb::obs {
namespace {

TraceEvent ev(Picos ts, EventKind kind, Component comp, std::uint32_t id = 0,
              Picos dur = 0) {
  TraceEvent e;
  e.ts = ts;
  e.dur = dur;
  e.kind = kind;
  e.comp = comp;
  e.id = id;
  return e;
}

// --- ring buffer bounds and ordering ----------------------------------

TEST(TraceSinkTest, RecordsInOrderBelowCapacity) {
  TraceSink sink(8);
  for (int i = 0; i < 5; ++i) {
    sink.record(ev(i * 10, EventKind::RcRx, Component::RootComplex, i));
  }
  EXPECT_EQ(sink.size(), 5u);
  EXPECT_EQ(sink.recorded(), 5u);
  EXPECT_EQ(sink.dropped(), 0u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].id, static_cast<std::uint32_t>(i));
    EXPECT_EQ(events[i].ts, i * 10);
  }
}

TEST(TraceSinkTest, RingOverwritesOldestAndCountsDrops) {
  TraceSink sink(4);
  for (int i = 0; i < 10; ++i) {
    sink.record(ev(i, EventKind::LinkTx, Component::LinkUp, i));
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: the four most recent survive, in record order.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].id, static_cast<std::uint32_t>(6 + i));
  }
}

TEST(TraceSinkTest, ZeroCapacityThrows) {
  EXPECT_THROW(TraceSink(0), std::invalid_argument);
}

TEST(TraceSinkTest, ListenerSeesEveryEventEvenWhenRingWraps) {
  TraceSink sink(2);
  std::vector<std::uint32_t> seen;
  sink.set_listener([&](const TraceEvent& e) { seen.push_back(e.id); });
  for (int i = 0; i < 6; ++i) {
    sink.record(ev(i, EventKind::RcRx, Component::RootComplex, i));
  }
  ASSERT_EQ(seen.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(seen[i], static_cast<std::uint32_t>(i));
}

TEST(TraceSinkTest, ClearResets) {
  TraceSink sink(4);
  sink.record(ev(1, EventKind::RcRx, Component::RootComplex));
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_TRUE(sink.events().empty());
}

// --- minimal JSON parser for round-trip validation --------------------
//
// Just enough of RFC 8259 to prove the exported trace is well-formed:
// objects, arrays, strings (with escapes), numbers, true/false/null.

class JsonParser {
 public:
  explicit JsonParser(std::string text) : s_(std::move(text)) {}

  /// Parses one value and requires end-of-input after it.
  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  std::size_t objects() const { return objects_; }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++objects_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    return pos_ > start && s_[start] != '.';
  }

  bool literal(const char* word) {
    const std::string w = word;
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string s_;
  std::size_t pos_ = 0;
  std::size_t objects_ = 0;
};

TEST(TraceJsonTest, HandWrittenEventsExportWellFormedJson) {
  TraceSink sink(16);
  sink.record(ev(0, EventKind::DmaReadSubmit, Component::Device, 1));
  sink.record(ev(1500, EventKind::LinkTx, Component::LinkUp, 1, 3300));
  sink.record(ev(5000, EventKind::RcRx, Component::RootComplex, 1));
  std::ostringstream os;
  sink.write_chrome_json(os);
  const std::string json = os.str();

  JsonParser parser(json);
  EXPECT_TRUE(parser.parse()) << json;
  // Top-level + 7 thread_name metadata (each with nested args) + 3 events
  // (each with args) >= 1 + 14 + 6 objects.
  EXPECT_GE(parser.objects(), 21u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // The 3.3 ns span exports as a complete event with exact decimals.
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":0.001500,\"dur\":0.003300"),
            std::string::npos);
  // Instants carry the scope field instead of a duration.
  EXPECT_NE(json.find("\"ph\":\"i\",\"ts\":0.000000,\"s\":\"t\""),
            std::string::npos);
}

TEST(TraceJsonTest, SimulatedDmaTraceRoundTrips) {
  sim::SystemConfig cfg;  // NetFPGA-class defaults, Gen3 x8
  sim::System system(cfg);
  TraceSink sink;
  system.set_trace_sink(&sink);
  bool done = false;
  system.device().dma_read(0x10000, 512, [&] { done = true; });
  system.sim().run();
  ASSERT_TRUE(done);
  ASSERT_GT(sink.size(), 0u);

  std::ostringstream os;
  sink.write_chrome_json(os);
  JsonParser parser(os.str());
  EXPECT_TRUE(parser.parse());

  // Every lifecycle milestone of the single read is present and the
  // stream is chronological per record order.
  const auto events = sink.events();
  bool saw_submit = false, saw_wire = false, saw_rc = false, saw_mem = false,
       saw_cpl = false, saw_done = false;
  for (const auto& e : events) {
    EXPECT_GE(e.end(), e.ts);
    switch (e.kind) {
      case EventKind::DmaReadSubmit: saw_submit = true; break;
      case EventKind::LinkTx: saw_wire = true; break;
      case EventKind::RcRx: saw_rc = true; break;
      case EventKind::MemRead: saw_mem = true; break;
      case EventKind::DevCplRx: saw_cpl = true; break;
      case EventKind::DmaReadDone: saw_done = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_submit && saw_wire && saw_rc && saw_mem && saw_cpl &&
              saw_done);
}

}  // namespace
}  // namespace pcieb::obs
