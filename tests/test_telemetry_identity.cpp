// The telemetry byte-identity contract (docs/OBSERVABILITY.md): latency
// digests merged by a chaos campaign must serialize identically whether
// the trials ran serially, on the in-process thread pool, in fork-isolated
// workers, or resumed from a half-written journal — and arming telemetry
// must not change simulated behaviour at all (zero observational cost).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "check/campaign_exec.hpp"
#include "check/chaos.hpp"
#include "core/observe.hpp"
#include "core/runner.hpp"
#include "exec/journal.hpp"
#include "sysconfig/profiles.hpp"

namespace fs = std::filesystem;
using namespace pcieb;

namespace {

struct TempDir {
  std::string path = exec::make_temp_dir("pcieb-telemetry-id-");
  ~TempDir() { fs::remove_all(path); }
};

check::ChaosConfig small_campaign() {
  check::ChaosConfig cfg;
  cfg.trials = 10;
  cfg.iterations = 80;
  cfg.shrink = false;
  cfg.telemetry = true;
  return cfg;
}

}  // namespace

TEST(TelemetryIdentity, ThreadedCampaignDigestsMatchSerialByteForByte) {
  auto serial_cfg = small_campaign();
  const auto serial = check::run_campaign(serial_cfg);
  ASSERT_FALSE(serial.digests.empty());

  auto threaded_cfg = small_campaign();
  threaded_cfg.threads = 8;
  const auto threaded = check::run_campaign(threaded_cfg);

  EXPECT_EQ(serial.digests.serialize(), threaded.digests.serialize());
  EXPECT_EQ(serial.digests.to_table(), threaded.digests.to_table());
}

TEST(TelemetryIdentity, ForkIsolatedAndResumedCampaignsMatchInProcess) {
  const auto in_process = check::run_campaign(small_campaign());
  ASSERT_FALSE(in_process.digests.empty());

  TempDir tmp;
  check::ExecCampaignConfig iso;
  iso.chaos = small_campaign();
  iso.journal_dir = tmp.path;
  iso.pool.jobs = 3;
  const auto forked = check::run_campaign_isolated(iso);
  EXPECT_EQ(forked.digests.serialize(), in_process.digests.serialize());

  // Resume from the completed journal: every trial's digest payload is
  // read back, never re-run, and the merge must still be byte-identical.
  auto again = iso;
  again.resume = true;
  const auto resumed = check::run_campaign_isolated(again);
  EXPECT_EQ(resumed.resumed, iso.chaos.trials);
  EXPECT_EQ(resumed.digests.serialize(), in_process.digests.serialize());
}

TEST(TelemetryIdentity, CampaignDigestsAreDeterministicAcrossRepeats) {
  const auto a = check::run_campaign(small_campaign());
  const auto b = check::run_campaign(small_campaign());
  EXPECT_EQ(a.digests.serialize(), b.digests.serialize());
}

// Telemetry is observational: a trial run with digests recorded must make
// exactly the decisions of one run without — same event/TLP counts, same
// one-line summary. Only the digests differ (absent vs populated).
TEST(TelemetryIdentity, ArmedTrialBehavesIdenticallyToDisarmed) {
  const auto cfg = small_campaign();
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto spec = check::generate_trial(cfg, i);
    const auto bare = check::run_trial(spec, /*telemetry=*/false);
    const auto armed = check::run_trial(spec, /*telemetry=*/true);
    EXPECT_EQ(bare.events, armed.events) << "trial " << i;
    EXPECT_EQ(bare.tlps, armed.tlps) << "trial " << i;
    EXPECT_EQ(bare.summary(), armed.summary()) << "trial " << i;
    EXPECT_TRUE(bare.digests.empty());
    EXPECT_FALSE(armed.digests.empty()) << "trial " << i;
  }
}

// The same property one layer down: attaching the TimeSeries sampler to a
// latency bench must leave every simulated sample bit-identical — the
// tier-2 fig05/fault_goodput snapshots pin this for the full CLI paths,
// this pins it for the library path with a tight loop.
TEST(TelemetryIdentity, TimeSeriesSamplerDoesNotPerturbTheBench) {
  core::BenchParams p;
  p.kind = core::BenchKind::LatRd;
  p.iterations = 400;
  p.warmup = 50;

  sim::System bare_sys(sys::nfp6000_hsw().config);
  const auto bare = core::run_latency_bench(bare_sys, p);

  sim::System armed_sys(sys::nfp6000_hsw().config);
  core::ObsSession::Options oopts;
  oopts.telemetry = true;
  oopts.telemetry_interval_ps = 500'000;
  core::ObsSession obs(armed_sys, oopts);
  const auto armed = core::run_latency_bench(armed_sys, p);
  obs.finish_telemetry();

  ASSERT_NE(obs.telemetry(), nullptr);
  EXPECT_GT(obs.telemetry()->size(), 0u);
  const auto& a = bare.samples_ns.raw();
  const auto& b = armed.samples_ns.raw();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "sample " << i;
  }
  EXPECT_EQ(bare.summary.median_ns, armed.summary.median_ns);
}
