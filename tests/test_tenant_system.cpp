// SR-IOV multi-tenant system tests: construction validation, per-VF
// workload independence, the canonical counters_line schema, the armed
// differential identity (victim artifact invariant under an attacker's
// vf-scoped fault plan), blast-radius accounting with shared recovery,
// the seeded misroute bug firing the bleed monitor, and VF-attributed
// watchdog deadlock reports. See docs/ISOLATION.md.
#include "sim/vf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "check/tenant_monitors.hpp"
#include "core/tenant_runner.hpp"
#include "fault/plan.hpp"
#include "fault/recovery.hpp"
#include "fault/watchdog.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb {
namespace {

sim::MultiTenantConfig tenant_cfg(unsigned tenants,
                                  const std::string& faults = "") {
  sim::MultiTenantConfig cfg;
  cfg.base = sys::profile_by_name("NFP6000-HSW").config;
  if (!faults.empty()) cfg.base.fault_plan = fault::parse_plan(faults);
  cfg.tenants = tenants;
  return cfg;
}

core::BenchParams bench_params(core::BenchKind kind,
                               std::size_t iterations = 300) {
  core::BenchParams p;
  p.kind = kind;
  p.transfer_size = 256;
  p.window_bytes = 1ull << 20;
  p.iterations = iterations;
  p.warmup = 0;
  p.seed = 7;
  return p;
}

TEST(MultiTenantSystemTest, CtorValidatesConfig) {
  const auto build = [](const sim::MultiTenantConfig& cfg) {
    sim::MultiTenantSystem system(cfg);
  };
  EXPECT_THROW(build(tenant_cfg(0)), std::invalid_argument);
  EXPECT_THROW(build(tenant_cfg(65)), std::invalid_argument);
  auto bad_weights = tenant_cfg(2);
  bad_weights.weights = {1, 2, 3};  // size != tenants
  EXPECT_THROW(build(bad_weights), std::invalid_argument);
  auto zero_weight = tenant_cfg(2);
  zero_weight.weights = {1, 0};
  EXPECT_THROW(build(zero_weight), std::invalid_argument);
  auto bad_quota = tenant_cfg(2);
  bad_quota.ddio_quota = {2};  // size != tenants
  EXPECT_THROW(build(bad_quota), std::invalid_argument);
}

TEST(MultiTenantSystemTest, ArmedTenantsCompleteIndependentWorkloads) {
  sim::MultiTenantSystem system(tenant_cfg(3));
  check::TenantMonitorSuite monitors(system);
  const auto results =
      core::run_tenant_bench(system, bench_params(core::BenchKind::BwRd));
  monitors.check_quiescent();
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_EQ(r.ops, 300u);
    EXPECT_EQ(r.latency.count(), 300u) << "vf " << r.vf;
    EXPECT_GT(r.goodput_gbps, 0.0) << "vf " << r.vf;
    EXPECT_EQ(r.lost_payload_bytes, 0u) << "vf " << r.vf;
    EXPECT_EQ(system.device(r.vf).foreign_tlps(), 0u) << "vf " << r.vf;
  }
  EXPECT_TRUE(monitors.ok()) << monitors.report();
  EXPECT_EQ(system.device_wide_actions(), 0u);
}

TEST(MultiTenantSystemTest, CountersLineSchemaIsStable) {
  sim::MultiTenantSystem system(tenant_cfg(2));
  core::run_tenant_bench(system, bench_params(core::BenchKind::BwRdWr, 50));
  const std::string line = system.counters_line(1);
  // Space-separated k=v tokens, no empties, keys unique.
  std::istringstream is(line);
  std::vector<std::string> keys;
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    ASSERT_NE(eq, std::string::npos) << tok;
    ASSERT_GT(eq, 0u) << tok;
    keys.push_back(tok.substr(0, eq));
  }
  for (const char* expect :
       {"dev.reads_completed", "dev.foreign_tlps", "rc.writes_committed",
        "lane.up.tlps", "lane.down.replays", "iommu.hits", "iommu.remaps",
        "aer.correctable", "lost_write_bytes"}) {
    EXPECT_NE(std::find(keys.begin(), keys.end(), expect), keys.end())
        << "missing key " << expect;
  }
  auto sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
      << "duplicate counter keys";
  // Weakened (shared-FIFO) lines keep the same schema, zero-padded.
  auto weak_cfg = tenant_cfg(2);
  weak_cfg.isolation = sim::TenantIsolation::all_weakened();
  sim::MultiTenantSystem weak(weak_cfg);
  std::istringstream ws(weak.counters_line(1));
  std::vector<std::string> weak_keys;
  while (ws >> tok) weak_keys.push_back(tok.substr(0, tok.find('=')));
  EXPECT_EQ(weak_keys, keys);
}

// The headline contract, checked directly (the chaos campaign checks it
// per-trial): with isolation armed, the victim's latency digest and
// counters are byte-identical whether the attacker's plan is armed or
// stripped.
TEST(MultiTenantSystemTest, ArmedDifferentialIdentityHolds) {
  const auto victim_artifact = [](const std::string& faults) {
    sim::MultiTenantSystem system(tenant_cfg(4, faults));
    const auto results =
        core::run_tenant_bench(system, bench_params(core::BenchKind::BwWr));
    std::string out;
    for (unsigned vf = 1; vf < 4; ++vf) {
      out += results.at(vf).latency.serialize() + "\n" +
             system.counters_line(vf) + "\n";
    }
    return out;
  };
  const std::string quiet = victim_artifact("");
  const std::string storm = victim_artifact("drop@every=15,dir=up,vf=0");
  EXPECT_EQ(storm, quiet);
}

TEST(MultiTenantSystemTest, SharedRecoveryExpandsBlastRadius) {
  auto cfg = tenant_cfg(4, "drop@every=15,dir=up,vf=0");
  cfg.base.recovery = fault::parse_recovery_policy("default");
  cfg.isolation.vf_scoped_recovery = false;
  sim::MultiTenantSystem system(cfg);
  core::run_tenant_bench(system, bench_params(core::BenchKind::BwWr));
  // Every recovery action taken on behalf of vf0's ladder hit the whole
  // device; the expansion tally counted each one.
  EXPECT_GT(system.device_wide_actions(), 0u);

  // Scoped recovery under the same storm keeps the count to the inherent
  // device-wide escalations only (fewer actions than the shared ladder).
  auto scoped_cfg = tenant_cfg(4, "drop@every=15,dir=up,vf=0");
  scoped_cfg.base.recovery = fault::parse_recovery_policy("default");
  sim::MultiTenantSystem scoped(scoped_cfg);
  core::run_tenant_bench(scoped, bench_params(core::BenchKind::BwWr));
  EXPECT_LT(scoped.device_wide_actions(), system.device_wide_actions());
}

TEST(MultiTenantSystemTest, SeededMisrouteFiresBleedMonitor) {
  auto cfg = tenant_cfg(4, "drop@nth=5,vf=0");
  sim::MultiTenantSystem system(cfg);
  system.test_misroute_completions(true);
  check::TenantMonitorSuite monitors(system);
  core::run_tenant_bench(system, bench_params(core::BenchKind::BwRd));
  // vf0's dropped upstream TLP armed a one-shot misroute: its next
  // completion was delivered to vf1 carrying vf0's RID, which vf1's
  // ingress guard counted and the bleed monitor flagged.
  EXPECT_GT(system.device(1).foreign_tlps(), 0u);
  ASSERT_FALSE(monitors.ok());
  bool bleed = false;
  for (const auto& v : monitors.violations()) {
    if (std::string(v.monitor) == "bleed") bleed = true;
  }
  EXPECT_TRUE(bleed) << monitors.report();
}

// Satellite: a quiescent-deadlock report names the owning VF. The tag
// dump is rid-prefixed ("rid 00:00.<func>"), so a stuck read on vf2 is
// attributed to function 2, not just "some tag on the device".
TEST(MultiTenantSystemTest, WatchdogDeadlockReportNamesOwningVf) {
  sim::MultiTenantSystem system(tenant_cfg(3));
  bool done = false;
  system.device(2).dma_read(0x1000, 256, [&] { done = true; });
  system.sim().run_until(from_nanos(1));  // in flight, nowhere near done
  ASSERT_FALSE(done);
  ASSERT_GT(system.device(2).pending_read_ops(), 0u);
  try {
    system.watchdog(2)->check_quiescent(system.sim().now());
    FAIL() << "expected WatchdogError";
  } catch (const fault::WatchdogError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("device.dma_read_ops"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rid 00:00.2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tags:"), std::string::npos) << msg;
  }
  // The healthy VFs' watchdogs see no outstanding work of their own.
  EXPECT_NO_THROW(system.watchdog(0)->check_quiescent(system.sim().now()));
  EXPECT_NO_THROW(system.watchdog(1)->check_quiescent(system.sim().now()));
  system.sim().run();  // drain so the read completes cleanly
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace pcieb
