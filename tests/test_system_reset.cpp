// Reset-vs-fresh byte identity (the trial-reuse contract): a pooled
// sim::System that is reset() between trials must behave bit-identically
// to a freshly constructed one — same events, TLPs, violations, latency
// digests, recovery digest and summary — across randomized chaos trials.
// This is the property that makes System pooling in check::run_trial a
// pure optimization rather than a semantic change.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/chaos.hpp"
#include "core/params.hpp"
#include "core/runner.hpp"
#include "fault/recovery.hpp"
#include "sim/system.hpp"
#include "sysconfig/profiles.hpp"

using namespace pcieb;

namespace {

/// Restore pooling to its ambient value on scope exit so test order
/// never leaks state between cases.
struct PoolingGuard {
  bool saved = check::trial_system_pooling();
  ~PoolingGuard() { check::set_trial_system_pooling(saved); }
};

void expect_outcomes_identical(const check::TrialOutcome& fresh,
                               const check::TrialOutcome& pooled,
                               std::uint64_t trial) {
  EXPECT_EQ(fresh.failed, pooled.failed) << "trial " << trial;
  EXPECT_EQ(fresh.total_violations, pooled.total_violations)
      << "trial " << trial;
  ASSERT_EQ(fresh.violations.size(), pooled.violations.size())
      << "trial " << trial;
  for (std::size_t v = 0; v < fresh.violations.size(); ++v) {
    EXPECT_EQ(fresh.violations[v].format(), pooled.violations[v].format())
        << "trial " << trial << " violation " << v;
  }
  EXPECT_EQ(fresh.error, pooled.error) << "trial " << trial;
  EXPECT_EQ(fresh.events, pooled.events) << "trial " << trial;
  EXPECT_EQ(fresh.tlps, pooled.tlps) << "trial " << trial;
  EXPECT_EQ(fresh.digests.serialize(), pooled.digests.serialize())
      << "trial " << trial;
  EXPECT_EQ(fresh.recovery_digest, pooled.recovery_digest)
      << "trial " << trial;
  EXPECT_EQ(fresh.recovery_state, pooled.recovery_state)
      << "trial " << trial;
  EXPECT_EQ(fresh.summary(), pooled.summary()) << "trial " << trial;
}

/// Run trials 0..n-1 of `cfg` twice — pooling off (every trial builds a
/// fresh System) and pooling on (trials reuse reset Systems out of the
/// thread-local pool) — and require byte-identical outcomes. Telemetry is
/// on so the comparison covers the full latency-digest stream, not just
/// the aggregate counters.
void check_reset_identity(const check::ChaosConfig& cfg, std::uint64_t n) {
  PoolingGuard guard;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto spec = check::generate_trial(cfg, i);
    check::set_trial_system_pooling(false);
    const auto fresh = check::run_trial(spec, /*telemetry=*/true);
    check::set_trial_system_pooling(true);
    const auto pooled = check::run_trial(spec, /*telemetry=*/true);
    expect_outcomes_identical(fresh, pooled, i);
  }
}

}  // namespace

// Randomized classic trials: mixed profiles, IOMMU arming, workloads and
// fault plans. The pooled pass reuses Systems across iterations (the pool
// persists between loop rounds), so later trials genuinely exercise
// reset-after-a-faulted-run, not just reset-after-construction.
TEST(SystemReset, PooledTrialsMatchFreshAcrossRandomizedSpecs) {
  check::ChaosConfig cfg;
  cfg.master_seed = 0x5e5e7;
  cfg.trials = 24;
  cfg.iterations = 60;
  cfg.shrink = false;
  check_reset_identity(cfg, 24);
}

// Same property with the recovery ladder armed in every trial: reset must
// tear down the previous trial's RecoveryManager/AER listener wiring and
// re-arm cleanly (digest and final state included in the comparison).
TEST(SystemReset, PooledTrialsMatchFreshWithRecoveryArmed) {
  check::ChaosConfig cfg;
  cfg.master_seed = 0x4ec0;
  cfg.trials = 12;
  cfg.iterations = 60;
  cfg.shrink = false;
  cfg.recovery = fault::parse_recovery_policy("default");
  check_reset_identity(cfg, 12);
}

// The seeded-bug flag must not leak through the pool: a trial that arms
// test_leak_credits_on_drop followed by one that doesn't (same system
// shape, hence same pooled System) must leave the second trial clean.
TEST(SystemReset, SeededBugDoesNotLeakThroughThePool) {
  PoolingGuard guard;
  check::ChaosConfig cfg;
  cfg.master_seed = 0xb19;
  cfg.iterations = 60;
  auto spec = check::generate_trial(cfg, 0);

  check::set_trial_system_pooling(false);
  const auto clean_fresh = check::run_trial(spec);

  check::set_trial_system_pooling(true);
  auto bugged = spec;
  bugged.seed_credit_leak_bug = true;
  (void)check::run_trial(bugged);
  const auto clean_pooled = check::run_trial(spec);
  expect_outcomes_identical(clean_fresh, clean_pooled, 0);
}

// Library-level reset identity: reset() with the same config must replay
// the construction-time state exactly — a latency bench on a reset System
// produces bit-identical samples to one on a fresh System, even after the
// first System already ran a different (bandwidth) workload.
TEST(SystemReset, ResetSystemReproducesFreshLatencySamples) {
  const auto cfg = sys::nfp6000_hsw().config;

  core::BenchParams bw;
  bw.kind = core::BenchKind::BwWr;
  bw.iterations = 200;
  core::BenchParams lat;
  lat.kind = core::BenchKind::LatRd;
  lat.iterations = 300;
  lat.warmup = 50;

  sim::System fresh(cfg);
  const auto want = core::run_latency_bench(fresh, lat);

  sim::System reused(cfg);
  (void)core::run_bandwidth_bench(reused, bw);  // dirty every component
  reused.reset(cfg);
  const auto got = core::run_latency_bench(reused, lat);

  const auto& a = want.samples_ns.raw();
  const auto& b = got.samples_ns.raw();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "sample " << i;
  }
  EXPECT_EQ(want.summary.median_ns, got.summary.median_ns);
}

// Pooling must be on by default (the perf win run_campaign relies on) and
// the toggle must round-trip.
TEST(SystemReset, PoolingDefaultsOnAndToggles) {
  PoolingGuard guard;
  check::set_trial_system_pooling(true);
  EXPECT_TRUE(check::trial_system_pooling());
  check::set_trial_system_pooling(false);
  EXPECT_FALSE(check::trial_system_pooling());
}
