// Differential oracle: fault-free simulator runs must land inside the
// calibrated sim/model tolerance bands, the latency leg must match the
// analytic stage budget to within timestamp quantization, and the report
// plumbing must actually flag divergence.
#include <gtest/gtest.h>

#include "check/oracle.hpp"

namespace pcieb {
namespace {

TEST(Oracle, ToleranceBandsAreCalibrated) {
  // >=128 B transfers track the model within 5%; 64 B dips are kind-
  // specific (device issue limits). The ceiling always forbids the sim
  // beating the protocol model.
  for (const auto kind : {core::BenchKind::BwRd, core::BenchKind::BwWr,
                          core::BenchKind::BwRdWr}) {
    for (const std::uint32_t size : {128u, 256u, 1024u}) {
      const auto tol = check::oracle_tolerance("any", kind, size);
      EXPECT_DOUBLE_EQ(tol.ratio_lo, 0.95);
      EXPECT_DOUBLE_EQ(tol.ratio_hi, 1.005);
    }
  }
  const auto rd64 = check::oracle_tolerance("any", core::BenchKind::BwRd, 64);
  const auto wr64 = check::oracle_tolerance("any", core::BenchKind::BwWr, 64);
  EXPECT_LT(rd64.ratio_lo, wr64.ratio_lo);
  EXPECT_LT(wr64.ratio_lo, 0.95);
}

TEST(Oracle, DefaultCasesCoverBothAdaptersAndAllKinds) {
  const auto cases = check::default_oracle_cases();
  EXPECT_EQ(cases.size(), 18u);  // 2 systems x 3 kinds x 3 sizes
  bool nfp = false, fpga = false;
  for (const auto& c : cases) {
    nfp = nfp || c.system == "NFP6000-HSW";
    fpga = fpga || c.system == "NetFPGA-HSW";
  }
  EXPECT_TRUE(nfp);
  EXPECT_TRUE(fpga);
}

TEST(Oracle, DefaultCasesPass) {
  const auto report =
      check::run_differential_oracle(check::default_oracle_cases());
  EXPECT_TRUE(report.ok()) << report.summary();
  for (const auto& row : report.rows) {
    EXPECT_GT(row.sim_gbps, 0.0);
    EXPECT_GT(row.model_gbps, 0.0);
    // The model is an upper bound: the simulator approaches from below.
    EXPECT_LE(row.ratio, row.tol.ratio_hi) << row.format();
    EXPECT_GE(row.ratio, row.tol.ratio_lo) << row.format();
  }
}

TEST(Oracle, RatioIsGenuinelyMeasuredNotAssumed) {
  // 64 B reads sit visibly below the model (device issue limits) — the
  // oracle measures a real gap, it does not rubber-stamp ratio == 1.
  check::OracleCase c;
  c.system = "NFP6000-HSW";
  c.kind = core::BenchKind::BwRd;
  c.size = 64;
  const auto row = check::run_oracle_case(c);
  EXPECT_TRUE(row.ok) << row.format();
  EXPECT_LT(row.ratio, 0.95) << row.format();
  EXPECT_GT(row.ratio, row.tol.ratio_lo) << row.format();
}

TEST(Oracle, ReportFlagsDivergence) {
  check::OracleReport report;
  check::OracleRow good;
  good.ok = true;
  check::OracleRow bad;
  bad.ok = false;
  bad.c.system = "NFP6000-HSW";
  bad.c.kind = core::BenchKind::BwWr;
  bad.c.size = 256;
  report.rows = {good, bad};
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failures(), 1u);
  EXPECT_NE(report.summary().find("FAIL"), std::string::npos);
  EXPECT_NE(report.summary().find("1 diverged"), std::string::npos);
}

TEST(Oracle, LatencyLegMatchesStageBudget) {
  for (const char* system : {"NFP6000-HSW", "NetFPGA-HSW"}) {
    for (const std::uint32_t size : {64u, 512u}) {
      const auto row = check::run_latency_oracle_case(system, size);
      EXPECT_TRUE(row.ok) << row.format();
      EXPECT_GT(row.sim_median_ns, 0.0);
      EXPECT_GT(row.model_ns, 0.0);
    }
  }
}

}  // namespace
}  // namespace pcieb
