#include "pcie/flow_control.hpp"

#include <gtest/gtest.h>

namespace pcieb::proto {
namespace {

Tlp write_tlp(std::uint32_t payload) {
  return Tlp{TlpType::MemWr, 0, payload, 0, 0};
}
Tlp read_tlp() { return Tlp{TlpType::MemRd, 0, 0, 64, 0}; }
Tlp cpl_tlp(std::uint32_t payload) {
  return Tlp{TlpType::CplD, 0, payload, 0, 0};
}

TEST(CreditMath, PoolMapping) {
  EXPECT_EQ(pool_for(TlpType::MemWr), CreditPool::Posted);
  EXPECT_EQ(pool_for(TlpType::MemRd), CreditPool::NonPosted);
  EXPECT_EQ(pool_for(TlpType::CplD), CreditPool::Completion);
  EXPECT_EQ(pool_for(TlpType::Cpl), CreditPool::Completion);
}

TEST(CreditMath, DataCreditsAre16ByteUnits) {
  EXPECT_EQ(data_credits(0), 0u);
  EXPECT_EQ(data_credits(1), 1u);
  EXPECT_EQ(data_credits(16), 1u);
  EXPECT_EQ(data_credits(17), 2u);
  EXPECT_EQ(data_credits(256), 16u);
}

TEST(CreditLedgerTest, ConsumeAndRelease) {
  CreditLimits limits;
  limits.posted_hdr = 2;
  limits.posted_data = 20;
  CreditLedger ledger(limits);

  const Tlp w = write_tlp(128);  // 8 data credits
  EXPECT_TRUE(ledger.can_send(w));
  ledger.consume(w);
  EXPECT_EQ(ledger.posted_hdr_in_use(), 1u);
  EXPECT_EQ(ledger.posted_data_in_use(), 8u);
  ledger.consume(w);
  EXPECT_FALSE(ledger.can_send(w));  // hdr would fit? no: hdr full (2)
  ledger.release(w);
  EXPECT_TRUE(ledger.can_send(w));
}

TEST(CreditLedgerTest, DataCreditsCanBlockBeforeHeaders) {
  CreditLimits limits;
  limits.posted_hdr = 100;
  limits.posted_data = 10;  // 160 B
  CreditLedger ledger(limits);
  ledger.consume(write_tlp(128));  // 8 credits
  EXPECT_TRUE(ledger.can_send(write_tlp(32)));   // 2 more fits
  EXPECT_FALSE(ledger.can_send(write_tlp(64)));  // 4 more does not
}

TEST(CreditLedgerTest, NonPostedUsesHeaderOnly) {
  CreditLimits limits;
  limits.nonposted_hdr = 1;
  CreditLedger ledger(limits);
  ledger.consume(read_tlp());
  EXPECT_FALSE(ledger.can_send(read_tlp()));
  ledger.release(read_tlp());
  EXPECT_TRUE(ledger.can_send(read_tlp()));
}

TEST(CreditLedgerTest, InfiniteCompletionsNeverBlock) {
  CreditLedger ledger(CreditLimits::infinite_completions());
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ledger.can_send(cpl_tlp(256)));
    ledger.consume(cpl_tlp(256));
  }
}

TEST(CreditLedgerTest, ConsumeWithoutCreditsThrows) {
  CreditLimits limits;
  limits.posted_hdr = 0;
  CreditLedger ledger(limits);
  EXPECT_THROW(ledger.consume(write_tlp(4)), std::logic_error);
}

TEST(CreditLedgerTest, ReleaseUnderflowThrows) {
  CreditLedger ledger(CreditLimits{});
  EXPECT_THROW(ledger.release(write_tlp(4)), std::logic_error);
}

TEST(CreditLedgerTest, PoolsAreIndependent) {
  CreditLimits limits;
  limits.posted_hdr = 1;
  limits.nonposted_hdr = 1;
  CreditLedger ledger(limits);
  ledger.consume(write_tlp(4));
  EXPECT_FALSE(ledger.can_send(write_tlp(4)));
  EXPECT_TRUE(ledger.can_send(read_tlp()));  // non-posted unaffected
}

}  // namespace
}  // namespace pcieb::proto
