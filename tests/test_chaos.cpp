// Chaos driver: deterministic trial generation, fault-free and seeded-bug
// trials, and the shrinker's contract — a many-clause failing plan
// minimizes to a tiny reproducer that still fails, deterministically,
// and round-trips through the --faults grammar.
#include <gtest/gtest.h>

#include "check/chaos.hpp"
#include "fault/plan.hpp"

namespace pcieb {
namespace {

check::TrialSpec seeded_bug_trial() {
  check::TrialSpec spec;
  spec.system = "NFP6000-HSW";
  spec.params.kind = core::BenchKind::BwWr;
  spec.params.transfer_size = 256;
  spec.params.window_bytes = 8192;
  spec.params.pattern = core::AccessPattern::Sequential;
  spec.params.cache_state = core::CacheState::HostWarm;
  spec.params.numa_local = true;
  spec.params.iterations = 400;
  spec.params.seed = 7;
  // Six clauses; only the upstream drop interacts with the seeded
  // credit-return omission — everything else is shrinkable noise.
  spec.plan = fault::parse_plan(
      "drop@every=150,dir=up,time=0ps-1000000000000ps;"
      "corrupt@prob=0.002;"
      "ack-loss@every=900;"
      "poison@nth=50;"
      "cpl-ur@every=700;"
      "iommu@every=4000");
  spec.plan.seed = 99;
  spec.seed_credit_leak_bug = true;
  return spec;
}

TEST(Chaos, GenerationIsDeterministic) {
  check::ChaosConfig cfg;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto a = check::generate_trial(cfg, i);
    const auto b = check::generate_trial(cfg, i);
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_EQ(a.repro_command(), b.repro_command());
    EXPECT_EQ(a.plan, b.plan);
  }
}

TEST(Chaos, DifferentIndicesGiveDifferentTrials) {
  check::ChaosConfig cfg;
  const auto a = check::generate_trial(cfg, 0);
  const auto b = check::generate_trial(cfg, 1);
  EXPECT_NE(a.describe(), b.describe());
}

TEST(Chaos, DifferentMasterSeedsGiveDifferentTrials) {
  check::ChaosConfig a_cfg, b_cfg;
  b_cfg.master_seed = a_cfg.master_seed + 1;
  EXPECT_NE(check::generate_trial(a_cfg, 0).describe(),
            check::generate_trial(b_cfg, 0).describe());
}

TEST(Chaos, FaultFreeTrialPasses) {
  check::TrialSpec spec;
  spec.system = "NetFPGA-HSW";
  spec.params.kind = core::BenchKind::BwRd;
  spec.params.transfer_size = 512;
  spec.params.window_bytes = 8192;
  spec.params.pattern = core::AccessPattern::Sequential;
  spec.params.cache_state = core::CacheState::HostWarm;
  spec.params.iterations = 200;
  const auto out = check::run_trial(spec);
  EXPECT_FALSE(out.failed) << out.summary();
  EXPECT_EQ(out.total_violations, 0u);
}

TEST(Chaos, ReproCommandNamesTheTrial) {
  const auto spec = seeded_bug_trial();
  const auto cmd = spec.repro_command();
  EXPECT_NE(cmd.find("pciebench run"), std::string::npos);
  EXPECT_NE(cmd.find("--system NFP6000-HSW"), std::string::npos);
  EXPECT_NE(cmd.find("--faults '"), std::string::npos);
  EXPECT_NE(cmd.find("--fault-seed 99"), std::string::npos);
  EXPECT_NE(cmd.find("--monitors"), std::string::npos);
}

// The headline acceptance path: a six-clause failing plan shrinks to a
// <=2-clause minimal reproducer that still fails, within budget, and the
// minimized plan survives a grammar round trip (so the printed --faults
// string replays it exactly).
TEST(Chaos, ShrinkerMinimizesSeededBugToTinyReproducer) {
  const auto failing = seeded_bug_trial();
  ASSERT_GE(failing.plan.rules.size(), 6u);

  const auto first = check::run_trial(failing);
  ASSERT_TRUE(first.failed) << first.summary();

  const auto shrunk = check::shrink_trial(failing);
  EXPECT_LE(shrunk.runs, 128u);
  EXPECT_TRUE(shrunk.outcome.failed) << shrunk.outcome.summary();
  EXPECT_LE(shrunk.minimal.plan.rules.size(), 2u)
      << "minimal plan: " << shrunk.minimal.plan.describe();
  EXPECT_LE(shrunk.minimal.params.iterations, failing.params.iterations);

  // Deterministic replay: the minimal spec fails again, identically.
  const auto replay = check::run_trial(shrunk.minimal);
  EXPECT_TRUE(replay.failed);
  EXPECT_EQ(replay.total_violations, shrunk.outcome.total_violations);

  // Grammar round trip of the minimized plan.
  const auto reparsed = fault::parse_plan(shrunk.minimal.plan.describe());
  EXPECT_EQ(reparsed.rules, shrunk.minimal.plan.rules);
}

TEST(Chaos, CleanCampaignPasses) {
  check::ChaosConfig cfg;
  cfg.trials = 6;
  cfg.iterations = 200;
  std::size_t observed = 0;
  const auto result = check::run_campaign(
      cfg, [&](const check::TrialSpec&, const check::TrialOutcome&) {
        ++observed;
      });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.trials_run, 6u);
  EXPECT_EQ(observed, 6u);
  EXPECT_FALSE(result.first_failure.has_value());
}

TEST(Chaos, CampaignFindsAndShrinksSeededBug) {
  check::ChaosConfig cfg;
  cfg.trials = 40;
  cfg.iterations = 2000;
  cfg.seed_credit_leak_bug = true;
  const auto result = check::run_campaign(cfg);
  ASSERT_FALSE(result.ok()) << "campaign missed the seeded credit leak";
  ASSERT_TRUE(result.first_failure.has_value());
  ASSERT_TRUE(result.minimized.has_value());
  EXPECT_TRUE(result.minimized->outcome.failed);
  EXPECT_LE(result.minimized->minimal.plan.rules.size(),
            result.first_failure->plan.rules.size());
  // The reproducer prints a full replay command.
  EXPECT_NE(result.minimized->minimal.repro_command().find("--monitors"),
            std::string::npos);
}

}  // namespace
}  // namespace pcieb
