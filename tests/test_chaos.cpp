// Chaos driver: deterministic trial generation, fault-free and seeded-bug
// trials, and the shrinker's contract — a many-clause failing plan
// minimizes to a tiny reproducer that still fails, deterministically,
// and round-trips through the --faults grammar.
#include <gtest/gtest.h>

#include "check/chaos.hpp"
#include "fault/plan.hpp"

namespace pcieb {
namespace {

check::TrialSpec seeded_bug_trial() {
  check::TrialSpec spec;
  spec.system = "NFP6000-HSW";
  spec.params.kind = core::BenchKind::BwWr;
  spec.params.transfer_size = 256;
  spec.params.window_bytes = 8192;
  spec.params.pattern = core::AccessPattern::Sequential;
  spec.params.cache_state = core::CacheState::HostWarm;
  spec.params.numa_local = true;
  spec.params.iterations = 400;
  spec.params.seed = 7;
  // Six clauses; only the upstream drop interacts with the seeded
  // credit-return omission — everything else is shrinkable noise.
  spec.plan = fault::parse_plan(
      "drop@every=150,dir=up,time=0ps-1000000000000ps;"
      "corrupt@prob=0.002;"
      "ack-loss@every=900;"
      "poison@nth=50;"
      "cpl-ur@every=700;"
      "iommu@every=4000");
  spec.plan.seed = 99;
  spec.seed_credit_leak_bug = true;
  return spec;
}

TEST(Chaos, GenerationIsDeterministic) {
  check::ChaosConfig cfg;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto a = check::generate_trial(cfg, i);
    const auto b = check::generate_trial(cfg, i);
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_EQ(a.repro_command(), b.repro_command());
    EXPECT_EQ(a.plan, b.plan);
  }
}

TEST(Chaos, DifferentIndicesGiveDifferentTrials) {
  check::ChaosConfig cfg;
  const auto a = check::generate_trial(cfg, 0);
  const auto b = check::generate_trial(cfg, 1);
  EXPECT_NE(a.describe(), b.describe());
}

TEST(Chaos, DifferentMasterSeedsGiveDifferentTrials) {
  check::ChaosConfig a_cfg, b_cfg;
  b_cfg.master_seed = a_cfg.master_seed + 1;
  EXPECT_NE(check::generate_trial(a_cfg, 0).describe(),
            check::generate_trial(b_cfg, 0).describe());
}

TEST(Chaos, FaultFreeTrialPasses) {
  check::TrialSpec spec;
  spec.system = "NetFPGA-HSW";
  spec.params.kind = core::BenchKind::BwRd;
  spec.params.transfer_size = 512;
  spec.params.window_bytes = 8192;
  spec.params.pattern = core::AccessPattern::Sequential;
  spec.params.cache_state = core::CacheState::HostWarm;
  spec.params.iterations = 200;
  const auto out = check::run_trial(spec);
  EXPECT_FALSE(out.failed) << out.summary();
  EXPECT_EQ(out.total_violations, 0u);
}

TEST(Chaos, ReproCommandNamesTheTrial) {
  const auto spec = seeded_bug_trial();
  const auto cmd = spec.repro_command();
  EXPECT_NE(cmd.find("pciebench run"), std::string::npos);
  EXPECT_NE(cmd.find("--system NFP6000-HSW"), std::string::npos);
  EXPECT_NE(cmd.find("--faults '"), std::string::npos);
  EXPECT_NE(cmd.find("--fault-seed 99"), std::string::npos);
  EXPECT_NE(cmd.find("--monitors"), std::string::npos);
}

// The headline acceptance path: a six-clause failing plan shrinks to a
// <=2-clause minimal reproducer that still fails, within budget, and the
// minimized plan survives a grammar round trip (so the printed --faults
// string replays it exactly).
TEST(Chaos, ShrinkerMinimizesSeededBugToTinyReproducer) {
  const auto failing = seeded_bug_trial();
  ASSERT_GE(failing.plan.rules.size(), 6u);

  const auto first = check::run_trial(failing);
  ASSERT_TRUE(first.failed) << first.summary();

  const auto shrunk = check::shrink_trial(failing);
  EXPECT_LE(shrunk.runs, 128u);
  EXPECT_TRUE(shrunk.outcome.failed) << shrunk.outcome.summary();
  EXPECT_LE(shrunk.minimal.plan.rules.size(), 2u)
      << "minimal plan: " << shrunk.minimal.plan.describe();
  EXPECT_LE(shrunk.minimal.params.iterations, failing.params.iterations);

  // Deterministic replay: the minimal spec fails again, identically.
  const auto replay = check::run_trial(shrunk.minimal);
  EXPECT_TRUE(replay.failed);
  EXPECT_EQ(replay.total_violations, shrunk.outcome.total_violations);

  // Grammar round trip of the minimized plan.
  const auto reparsed = fault::parse_plan(shrunk.minimal.plan.describe());
  EXPECT_EQ(reparsed.rules, shrunk.minimal.plan.rules);
}

// The shrinker treats linkdown rules like any other clause: noise
// clauses around one drop away, and the rule's own optional predicates
// (dir, time window) are cleared while the failure survives. Driven by a
// synthetic runner so the oracle is exact.
TEST(Chaos, ShrinkerMinimizesLinkDownClauses) {
  check::TrialSpec failing;
  failing.system = "NFP6000-HSW";
  failing.params.kind = core::BenchKind::BwWr;
  failing.params.transfer_size = 256;
  failing.params.window_bytes = 8192;
  failing.params.iterations = 400;
  failing.plan = fault::parse_plan(
      "corrupt@prob=0.002;"
      "linkdown@nth=40,dir=down,time=1000000ps-900000000ps;"
      "ack-loss@every=900;"
      "poison@nth=50");

  // "Fails" iff some linkdown clause survives — the other clauses and
  // linkdown's own dir/time predicates are shrinkable noise.
  const auto oracle = [](const check::TrialSpec& s) {
    check::TrialOutcome out;
    for (const auto& r : s.plan.rules) {
      if (r.kind == fault::FaultKind::LinkDown) out.failed = true;
    }
    return out;
  };
  const auto shrunk = check::shrink_trial(failing, 64, oracle);
  ASSERT_TRUE(shrunk.outcome.failed);
  ASSERT_EQ(shrunk.minimal.plan.rules.size(), 1u)
      << shrunk.minimal.plan.describe();
  const auto& r = shrunk.minimal.plan.rules[0];
  EXPECT_EQ(r.kind, fault::FaultKind::LinkDown);
  EXPECT_EQ(r.dir, fault::LinkDir::Both);  // dir predicate cleared
  EXPECT_EQ(r.from, 0);                    // time window cleared
  EXPECT_EQ(shrunk.minimal.plan.describe(), "linkdown@nth=40");
}

// A recovery-armed campaign must visit the exact same trial specs as a
// plain one — the policy rides along after the generator's RNG stream is
// spent, so arming the ladder changes outcomes, never inputs.
TEST(Chaos, RecoveryArmedCampaignVisitsIdenticalTrialSpecs) {
  check::ChaosConfig plain;
  check::ChaosConfig armed = plain;
  armed.recovery = fault::parse_recovery_policy("aggressive");
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto a = check::generate_trial(plain, i);
    const auto b = check::generate_trial(armed, i);
    EXPECT_EQ(a.plan, b.plan) << i;
    EXPECT_EQ(a.params.seed, b.params.seed) << i;
    EXPECT_EQ(a.system, b.system) << i;
    // describe() differs only by the trailing recovery= tag.
    EXPECT_EQ(b.describe(), a.describe() + " recovery=aggressive") << i;
  }
}

TEST(Chaos, TrialOutcomeCarriesRecoveryDigestAndState) {
  check::TrialSpec spec;
  spec.system = "NFP6000-HSW";
  spec.params.kind = core::BenchKind::BwWr;
  spec.params.transfer_size = 256;
  spec.params.window_bytes = 8192;
  spec.params.iterations = 400;
  spec.plan = fault::parse_plan("linkdown@nth=30");
  spec.recovery = fault::parse_recovery_policy("default");

  const auto out = check::run_trial(spec, /*telemetry=*/false,
                                    /*throw_monitors=*/true);
  EXPECT_FALSE(out.failed) << out.summary();
  EXPECT_EQ(out.recovery_state, "operational");
  EXPECT_NE(out.recovery_digest.find("operational>contained:fatal"),
            std::string::npos)
      << out.recovery_digest;

  // Same spec without the policy: no ladder, empty outcome fields.
  spec.recovery = fault::RecoveryPolicy{};
  const auto bare = check::run_trial(spec);
  EXPECT_FALSE(bare.failed) << bare.summary();
  EXPECT_TRUE(bare.recovery_state.empty());
  EXPECT_TRUE(bare.recovery_digest.empty());
}

TEST(Chaos, CleanCampaignPasses) {
  check::ChaosConfig cfg;
  cfg.trials = 6;
  cfg.iterations = 200;
  std::size_t observed = 0;
  const auto result = check::run_campaign(
      cfg, [&](const check::TrialSpec&, const check::TrialOutcome&) {
        ++observed;
      });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.trials_run, 6u);
  EXPECT_EQ(observed, 6u);
  EXPECT_FALSE(result.first_failure.has_value());
}

TEST(Chaos, CampaignFindsAndShrinksSeededBug) {
  check::ChaosConfig cfg;
  cfg.trials = 40;
  cfg.iterations = 2000;
  cfg.seed_credit_leak_bug = true;
  const auto result = check::run_campaign(cfg);
  ASSERT_FALSE(result.ok()) << "campaign missed the seeded credit leak";
  ASSERT_TRUE(result.first_failure.has_value());
  ASSERT_TRUE(result.minimized.has_value());
  EXPECT_TRUE(result.minimized->outcome.failed);
  EXPECT_LE(result.minimized->minimal.plan.rules.size(),
            result.first_failure->plan.rules.size());
  // The reproducer prints a full replay command.
  EXPECT_NE(result.minimized->minimal.repro_command().find("--monitors"),
            std::string::npos);
}

}  // namespace
}  // namespace pcieb
