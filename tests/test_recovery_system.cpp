// The recovery ladder wired through a full sim::System: linkdown faults
// freeze the port with or without recovery armed, the armed ladder
// contains/hot-resets/re-enumerates and passes every invariant monitor,
// the convergence monitor flags a ladder stuck mid-escalation, the
// watchdog never mistakes an intentional containment quiet window for a
// stall, and BenchRunner splits goodput around the recovery window.
#include <gtest/gtest.h>

#include <string>

#include "check/monitors.hpp"
#include "core/runner.hpp"
#include "fault/plan.hpp"
#include "fault/recovery.hpp"
#include "obs/counters.hpp"
#include "sim/system.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb {
namespace {

core::BenchParams bw_params(core::BenchKind kind, std::size_t iters) {
  core::BenchParams p;
  p.kind = kind;
  p.transfer_size = 256;
  p.window_bytes = 64 * 1024;
  p.iterations = iters;
  p.warmup = 0;
  p.seed = 7;
  return p;
}

sim::SystemConfig recovery_config(const std::string& faults,
                                  const std::string& policy) {
  auto cfg = sys::profile_by_name("NFP6000-HSW").config;
  cfg.fault_plan = fault::parse_plan(faults);
  cfg.recovery = fault::parse_recovery_policy(policy);
  return cfg;
}

TEST(RecoverySystem, NoPolicyMeansNoManagerAndNoRecoveryCounters) {
  auto cfg = sys::profile_by_name("NFP6000-HSW").config;
  sim::System plain(cfg);
  EXPECT_EQ(plain.recovery(), nullptr);
  obs::CounterRegistry reg;
  plain.register_counters(reg);
  EXPECT_FALSE(reg.contains("recovery.transitions"));
  EXPECT_FALSE(reg.contains("device.flrs"));

  sim::System armed(recovery_config("linkdown@nth=50", "default"));
  ASSERT_NE(armed.recovery(), nullptr);
  obs::CounterRegistry reg2;
  armed.register_counters(reg2);
  EXPECT_TRUE(reg2.contains("recovery.transitions"));
  EXPECT_TRUE(reg2.contains("device.flrs"));
  EXPECT_TRUE(reg2.contains("link.up.blocked_drops"));
}

TEST(RecoverySystem, LinkDownWithoutRecoveryFreezesThePortForGood) {
  // The physical event fires regardless of policy: both directions
  // block, in-flight TLPs are discarded, and the workload terminates
  // through drop accounting + completion timeouts — not a hang.
  auto cfg = recovery_config("linkdown@nth=20", "none");
  sim::System system(cfg);
  check::MonitorSuite monitors(system);
  const auto r = core::run_bandwidth_bench(system, bw_params(
      core::BenchKind::BwWr, 400));
  monitors.check_quiescent();
  EXPECT_TRUE(monitors.ok()) << monitors.report();
  EXPECT_TRUE(system.upstream().blocked());
  EXPECT_TRUE(system.downstream().blocked());
  EXPECT_GT(r.lost_payload_bytes, 0u);
  EXPECT_FALSE(r.recovery.has_value());
  EXPECT_EQ(system.aer().count(fault::ErrorType::SurpriseLinkDown), 1u);
}

TEST(RecoverySystem, LinkDownWithRecoveryContainsResetsAndReenumerates) {
  sim::System system(recovery_config("linkdown@nth=20", "default"));
  check::MonitorSuite monitors(system);
  const auto r = core::run_bandwidth_bench(system, bw_params(
      core::BenchKind::BwWr, 2000));
  monitors.check_quiescent();
  EXPECT_TRUE(monitors.ok()) << monitors.report();

  const auto* rec = system.recovery();
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state(), fault::RecoveryState::Operational);
  EXPECT_TRUE(rec->converged());
  EXPECT_EQ(rec->containments(), 1u);
  EXPECT_EQ(rec->hot_resets(), 1u);
  // The port is open again and the device took exactly one reset.
  EXPECT_FALSE(system.upstream().blocked());
  EXPECT_FALSE(system.downstream().blocked());
  EXPECT_EQ(system.device().flr_count(), 1u);

  // Goodput phase report: the ladder fired mid-measurement, the healthy
  // window before the fault outpaces the containment window.
  ASSERT_TRUE(r.recovery.has_value());
  EXPECT_EQ(r.recovery->final_state, "operational");
  EXPECT_GE(r.recovery->transitions, 3u);
  EXPECT_GT(r.recovery->before_gbps, r.recovery->during_gbps);
}

TEST(RecoverySystem, RepeatedLinkDownExhaustsBudgetAndQuarantines) {
  sim::System system(recovery_config("linkdown@nth=20", "default,max-resets=1"));
  check::MonitorSuite monitors(system);
  core::run_bandwidth_bench(system, bw_params(core::BenchKind::BwWr, 2000));
  const auto* rec = system.recovery();
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->state(), fault::RecoveryState::Operational);
  ASSERT_EQ(rec->hot_resets(), 1u);

  // The reset budget is now spent. A second surprise link-down contains
  // the port again, and when the hold-off expires the ladder gives up
  // for good instead of burning another reset.
  system.aer().record(fault::ErrorType::SurpriseLinkDown, system.sim().now());
  system.sim().run();  // drain the containment action + hold-off timer

  EXPECT_EQ(rec->state(), fault::RecoveryState::Quarantined);
  EXPECT_TRUE(rec->converged());
  EXPECT_EQ(rec->quarantines(), 1u);
  // Quarantine keeps the port frozen — which is exactly what the
  // convergence monitor demands for that verdict.
  EXPECT_TRUE(system.upstream().blocked());
  EXPECT_TRUE(system.downstream().blocked());
  monitors.check_quiescent();
  EXPECT_TRUE(monitors.ok()) << monitors.report();
}

TEST(RecoverySystem, ConvergenceMonitorFlagsALadderStuckMidEscalation) {
  sim::System system(recovery_config("linkdown@nth=999999", "default"));
  check::MonitorSuite monitors(system);
  // Inject a fatal record directly: the listener moves the ladder to
  // Contained synchronously, but nothing runs the sim, so the hold-off
  // never expires — a quiesce in this state is a liveness violation.
  system.aer().record(fault::ErrorType::SurpriseLinkDown, 0);
  ASSERT_EQ(system.recovery()->state(), fault::RecoveryState::Contained);
  monitors.check_quiescent();
  EXPECT_FALSE(monitors.ok());
  bool found = false;
  for (const auto& v : monitors.violations()) {
    if (v.monitor == "recovery") {
      found = true;
      EXPECT_NE(v.detail.find("did not converge"), std::string::npos);
      EXPECT_NE(v.detail.find("contained"), std::string::npos);
    }
  }
  EXPECT_TRUE(found) << monitors.report();
}

TEST(RecoverySystem, WatchdogNeverFiresAcrossContainmentAndHotReset) {
  // Regression: the containment hold-off and reset window are intentional
  // quiet periods. The recovery manager re-primes the watchdog on every
  // transition, so even a paranoid stall threshold plus a sim-time limit
  // must survive a full contain -> reset -> re-enumerate episode.
  auto cfg = recovery_config("linkdown@nth=20", "default");
  cfg.watchdog.max_sim_time = from_millis(50);
  sim::System system(cfg);
  ASSERT_NE(system.watchdog(), nullptr);
  EXPECT_NO_THROW(
      core::run_bandwidth_bench(system, bw_params(core::BenchKind::BwWr, 2000)));
  ASSERT_NE(system.recovery(), nullptr);
  EXPECT_EQ(system.recovery()->state(), fault::RecoveryState::Operational);
  EXPECT_NO_THROW(system.check_deadlock());
}

TEST(RecoverySystem, CorrectableStormDowntrainsBothDirectionsThenRestores) {
  // ack-loss replays record correctable AER; a hair-trigger policy turns
  // the storm into a downtrain, and once the storm window passes the
  // probation clock restores full width.
  sim::System system(recovery_config(
      "ack-loss@every=3,time=0us-40us",
      "default,correctable-burst=3,correctable-window=1ms,probation=30us"));
  check::MonitorSuite monitors(system);
  core::run_bandwidth_bench(system, bw_params(core::BenchKind::BwWr, 2000));
  monitors.check_quiescent();
  EXPECT_TRUE(monitors.ok()) << monitors.report();

  const auto* rec = system.recovery();
  ASSERT_NE(rec, nullptr);
  EXPECT_GE(rec->downtrains(), 1u);
  EXPECT_GE(rec->restores(), 1u);
  EXPECT_EQ(rec->state(), fault::RecoveryState::Operational);
  EXPECT_FALSE(system.upstream().recovery_derated());
  EXPECT_FALSE(system.downstream().recovery_derated());
}

TEST(RecoverySystem, NonFatalStreakTriggersFlrAndCreditsSurvive) {
  // Poisoned completions record non-fatal AER; at the threshold the
  // device takes an FLR mid-run. The monitors' credit/tag/payload
  // conservation checks passing at quiesce is the core of the FLR
  // accounting story.
  sim::System system(recovery_config(
      "poison@every=40,dir=down", "default,nonfatal-threshold=3"));
  check::MonitorSuite monitors(system);
  core::run_bandwidth_bench(system, bw_params(core::BenchKind::BwRd, 2000));
  monitors.check_quiescent();
  EXPECT_TRUE(monitors.ok()) << monitors.report();

  const auto* rec = system.recovery();
  ASSERT_NE(rec, nullptr);
  EXPECT_GE(rec->flrs(), 1u);
  EXPECT_EQ(system.device().flr_count(), rec->flrs() + rec->hot_resets());
  EXPECT_TRUE(rec->converged());
}

TEST(RecoverySystem, RecoveryRunIsDeterministic) {
  const auto digest_of = [] {
    sim::System system(recovery_config(
        "linkdown@nth=20;cpl-ur@every=30", "aggressive"));
    core::run_bandwidth_bench(system, bw_params(core::BenchKind::BwRdWr, 1500));
    return system.recovery()->digest() + "|" +
           std::to_string(system.sim().executed());
  };
  const std::string first = digest_of();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(digest_of(), first);
  EXPECT_EQ(digest_of(), first);
}

}  // namespace
}  // namespace pcieb
