#include "sim/link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pcieb::sim {
namespace {

proto::Tlp write_tlp(std::uint32_t payload) {
  return proto::Tlp{proto::TlpType::MemWr, 0x1000, payload, 0, 0};
}

TEST(LinkTest, DeliveryTimeIsSerializationPlusPropagation) {
  Simulator sim;
  proto::LinkConfig cfg = proto::gen3_x8();
  Link link(sim, cfg, from_nanos(100));
  Picos delivered = -1;
  link.set_deliver([&](const proto::Tlp&) { delivered = sim.now(); });
  const proto::Tlp t = write_tlp(256);  // 280 wire bytes
  const Picos predicted = link.send(t);
  sim.run();
  EXPECT_EQ(delivered, predicted);
  const Picos ser = serialization_ps(280, cfg.tlp_gbps());
  EXPECT_EQ(delivered, ser + from_nanos(100));
}

TEST(LinkTest, BackToBackTlpsSerialize) {
  Simulator sim;
  proto::LinkConfig cfg = proto::gen3_x8();
  Link link(sim, cfg, 0);
  std::vector<Picos> times;
  link.set_deliver([&](const proto::Tlp&) { times.push_back(sim.now()); });
  link.send(write_tlp(256));
  link.send(write_tlp(256));
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[1] - times[0], serialization_ps(280, cfg.tlp_gbps()));
}

TEST(LinkTest, DeliveryPreservesOrder) {
  Simulator sim;
  Link link(sim, proto::gen3_x8(), from_nanos(50));
  std::vector<std::uint32_t> tags;
  link.set_deliver([&](const proto::Tlp& t) { tags.push_back(t.tag); });
  for (std::uint32_t i = 0; i < 20; ++i) {
    proto::Tlp t = write_tlp(64);
    t.tag = i;
    link.send(t);
  }
  sim.run();
  ASSERT_EQ(tags.size(), 20u);
  for (std::uint32_t i = 0; i < 20; ++i) EXPECT_EQ(tags[i], i);
}

TEST(LinkTest, CountsBytesAndTlps) {
  Simulator sim;
  Link link(sim, proto::gen3_x8(), 0);
  link.set_deliver([](const proto::Tlp&) {});
  link.send(write_tlp(64));   // 88 wire bytes
  link.send(write_tlp(128));  // 152 wire bytes
  sim.run();
  EXPECT_EQ(link.tlps_sent(), 2u);
  EXPECT_EQ(link.wire_bytes_sent(), 240u);
  EXPECT_EQ(link.payload_bytes_sent(), 192u);
}

TEST(LinkTest, SustainedRateMatchesConfiguredBandwidth) {
  Simulator sim;
  proto::LinkConfig cfg = proto::gen3_x8();
  Link link(sim, cfg, from_nanos(100));
  std::size_t delivered = 0;
  link.set_deliver([&](const proto::Tlp&) { ++delivered; });
  const int n = 1000;
  for (int i = 0; i < n; ++i) link.send(write_tlp(256));
  sim.run();
  EXPECT_EQ(delivered, static_cast<std::size_t>(n));
  // Payload goodput over the busy interval: 256/280 of the TLP rate.
  const double achieved = gbps(static_cast<std::uint64_t>(n) * 256,
                               sim.now() - from_nanos(100));
  EXPECT_NEAR(achieved, cfg.tlp_gbps() * 256.0 / 280.0, 0.2);
}

TEST(LinkTest, NoDeliverCallbackIsSafe) {
  Simulator sim;
  Link link(sim, proto::gen3_x8(), 0);
  link.send(write_tlp(64));
  EXPECT_NO_THROW(sim.run());
}

}  // namespace
}  // namespace pcieb::sim
