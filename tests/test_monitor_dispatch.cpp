// Devirtualized monitor dispatch (sim::Simulator::add_monitor): the
// flattened (fn, ctx) slot array that replaced the std::function check
// hook. Pins the dispatch mechanics — registration order, removal
// shift-down, slot exhaustion — and the observational contract mirrored
// from the telemetry identity test: arming check::MonitorSuite must not
// change one bit of simulated behaviour.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "check/monitors.hpp"
#include "core/params.hpp"
#include "core/runner.hpp"
#include "sim/simulator.hpp"
#include "sim/system.hpp"
#include "sysconfig/profiles.hpp"

using namespace pcieb;

namespace {

/// Appends its slot id to a shared log on every dispatch — firing order
/// IS registration order, so the log exposes the slot array's layout.
struct OrderProbe {
  int id = 0;
  std::vector<int>* log = nullptr;
  static void fire(void* ctx, Picos /*now*/) {
    auto* p = static_cast<OrderProbe*>(ctx);
    p->log->push_back(p->id);
  }
};

}  // namespace

TEST(MonitorDispatch, MonitorsFireInRegistrationOrderPerEvent) {
  sim::Simulator sim;
  std::vector<int> log;
  OrderProbe a{1, &log}, b{2, &log}, c{3, &log};
  sim.add_monitor(&OrderProbe::fire, &a);
  sim.add_monitor(&OrderProbe::fire, &b);
  sim.add_monitor(&OrderProbe::fire, &c);
  EXPECT_EQ(sim.monitor_count(), 3u);

  sim.after(10, [] {});
  sim.after(20, [] {});
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 1, 2, 3}));
}

TEST(MonitorDispatch, RemovalShiftsDownPreservingOrder) {
  sim::Simulator sim;
  std::vector<int> log;
  OrderProbe a{1, &log}, b{2, &log}, c{3, &log};
  sim.add_monitor(&OrderProbe::fire, &a);
  sim.add_monitor(&OrderProbe::fire, &b);
  sim.add_monitor(&OrderProbe::fire, &c);

  sim.remove_monitor(&OrderProbe::fire, &b);  // matched by (fn, ctx) pair
  EXPECT_EQ(sim.monitor_count(), 2u);
  sim.remove_monitor(&OrderProbe::fire, &b);  // unknown pair: ignored
  EXPECT_EQ(sim.monitor_count(), 2u);

  sim.after(10, [] {});
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 3}));
}

TEST(MonitorDispatch, SlotExhaustionAndNullFnThrow) {
  sim::Simulator sim;
  std::vector<int> log;
  std::vector<OrderProbe> probes(sim::Simulator::kMaxMonitors);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    probes[i] = {static_cast<int>(i), &log};
    sim.add_monitor(&OrderProbe::fire, &probes[i]);
  }
  EXPECT_EQ(sim.monitor_count(), sim::Simulator::kMaxMonitors);
  OrderProbe extra{99, &log};
  EXPECT_THROW(sim.add_monitor(&OrderProbe::fire, &extra), std::logic_error);
  EXPECT_THROW(sim.add_monitor(nullptr, nullptr), std::logic_error);
}

TEST(MonitorDispatch, SimulatorResetDetachesAllMonitors) {
  sim::Simulator sim;
  std::vector<int> log;
  OrderProbe a{1, &log};
  sim.add_monitor(&OrderProbe::fire, &a);
  sim.reset();
  EXPECT_EQ(sim.monitor_count(), 0u);
  sim.after(10, [] {});
  sim.run();
  EXPECT_TRUE(log.empty());
}

// MonitorSuite registers one devirtualized slot per invariant (clock,
// credits, tags, replay) and its destructor removes exactly its own —
// the RAII contract the trial loop leans on with pooled Systems.
TEST(MonitorDispatch, MonitorSuiteOwnsFourSlotsAndDetachesOnDestruction) {
  sim::System system(sys::nfp6000_hsw().config);
  EXPECT_EQ(system.sim().monitor_count(), 0u);
  {
    check::MonitorSuite suite(system);
    EXPECT_EQ(system.sim().monitor_count(), 4u);
  }
  EXPECT_EQ(system.sim().monitor_count(), 0u);
}

// The PR-6 telemetry mirror, one layer over: a bench run with the
// invariant monitors armed must produce bit-identical samples to one
// without — monitors observe, they never steer. Same (time,
// schedule-order) stream, same latency samples, same summary.
TEST(MonitorDispatch, ArmedBenchMatchesDisarmedBitForBit) {
  core::BenchParams p;
  p.kind = core::BenchKind::LatRd;
  p.iterations = 400;
  p.warmup = 50;

  sim::System bare_sys(sys::nfp6000_hsw().config);
  const auto bare = core::run_latency_bench(bare_sys, p);

  sim::System armed_sys(sys::nfp6000_hsw().config);
  check::MonitorSuite suite(armed_sys);
  const auto armed = core::run_latency_bench(armed_sys, p);
  suite.check_quiescent();
  EXPECT_TRUE(suite.ok());

  const auto& a = bare.samples_ns.raw();
  const auto& b = armed.samples_ns.raw();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "sample " << i;
  }
  EXPECT_EQ(bare.summary.median_ns, armed.summary.median_ns);
  EXPECT_EQ(bare_sys.sim().executed(), armed_sys.sim().executed());
}
