# Empty dependencies file for pciebench.
# This may be replaced when dependencies are built.
