file(REMOVE_RECURSE
  "CMakeFiles/pciebench.dir/pciebench.cpp.o"
  "CMakeFiles/pciebench.dir/pciebench.cpp.o.d"
  "pciebench"
  "pciebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pciebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
