# Empty dependencies file for ablation_unaligned.
# This may be replaced when dependencies are built.
