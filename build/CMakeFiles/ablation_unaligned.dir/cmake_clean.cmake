file(REMOVE_RECURSE
  "CMakeFiles/ablation_unaligned.dir/bench/ablation_unaligned.cpp.o"
  "CMakeFiles/ablation_unaligned.dir/bench/ablation_unaligned.cpp.o.d"
  "bench/ablation_unaligned"
  "bench/ablation_unaligned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unaligned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
