# Empty compiler generated dependencies file for fig08_numa.
# This may be replaced when dependencies are built.
