# Empty dependencies file for fig07_cache_ddio.
# This may be replaced when dependencies are built.
