file(REMOVE_RECURSE
  "CMakeFiles/fig07_cache_ddio.dir/bench/fig07_cache_ddio.cpp.o"
  "CMakeFiles/fig07_cache_ddio.dir/bench/fig07_cache_ddio.cpp.o.d"
  "bench/fig07_cache_ddio"
  "bench/fig07_cache_ddio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cache_ddio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
