file(REMOVE_RECURSE
  "CMakeFiles/table2_findings.dir/bench/table2_findings.cpp.o"
  "CMakeFiles/table2_findings.dir/bench/table2_findings.cpp.o.d"
  "bench/table2_findings"
  "bench/table2_findings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_findings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
