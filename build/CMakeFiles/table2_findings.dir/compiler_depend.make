# Empty compiler generated dependencies file for table2_findings.
# This may be replaced when dependencies are built.
