# Empty compiler generated dependencies file for ablation_inflight.
# This may be replaced when dependencies are built.
