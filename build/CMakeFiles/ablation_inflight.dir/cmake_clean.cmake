file(REMOVE_RECURSE
  "CMakeFiles/ablation_inflight.dir/bench/ablation_inflight.cpp.o"
  "CMakeFiles/ablation_inflight.dir/bench/ablation_inflight.cpp.o.d"
  "bench/ablation_inflight"
  "bench/ablation_inflight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inflight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
