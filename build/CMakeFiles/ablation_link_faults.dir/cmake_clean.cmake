file(REMOVE_RECURSE
  "CMakeFiles/ablation_link_faults.dir/bench/ablation_link_faults.cpp.o"
  "CMakeFiles/ablation_link_faults.dir/bench/ablation_link_faults.cpp.o.d"
  "bench/ablation_link_faults"
  "bench/ablation_link_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_link_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
