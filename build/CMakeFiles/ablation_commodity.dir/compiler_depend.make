# Empty compiler generated dependencies file for ablation_commodity.
# This may be replaced when dependencies are built.
