file(REMOVE_RECURSE
  "CMakeFiles/ablation_commodity.dir/bench/ablation_commodity.cpp.o"
  "CMakeFiles/ablation_commodity.dir/bench/ablation_commodity.cpp.o.d"
  "bench/ablation_commodity"
  "bench/ablation_commodity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_commodity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
