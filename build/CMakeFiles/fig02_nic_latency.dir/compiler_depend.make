# Empty compiler generated dependencies file for fig02_nic_latency.
# This may be replaced when dependencies are built.
