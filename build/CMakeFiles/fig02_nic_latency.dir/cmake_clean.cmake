file(REMOVE_RECURSE
  "CMakeFiles/fig02_nic_latency.dir/bench/fig02_nic_latency.cpp.o"
  "CMakeFiles/fig02_nic_latency.dir/bench/fig02_nic_latency.cpp.o.d"
  "bench/fig02_nic_latency"
  "bench/fig02_nic_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_nic_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
