# Empty compiler generated dependencies file for ablation_gen4.
# This may be replaced when dependencies are built.
