file(REMOVE_RECURSE
  "CMakeFiles/ablation_gen4.dir/bench/ablation_gen4.cpp.o"
  "CMakeFiles/ablation_gen4.dir/bench/ablation_gen4.cpp.o.d"
  "bench/ablation_gen4"
  "bench/ablation_gen4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gen4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
