file(REMOVE_RECURSE
  "CMakeFiles/fig06b_e3_bandwidth.dir/bench/fig06b_e3_bandwidth.cpp.o"
  "CMakeFiles/fig06b_e3_bandwidth.dir/bench/fig06b_e3_bandwidth.cpp.o.d"
  "bench/fig06b_e3_bandwidth"
  "bench/fig06b_e3_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06b_e3_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
