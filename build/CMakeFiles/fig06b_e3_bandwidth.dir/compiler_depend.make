# Empty compiler generated dependencies file for fig06b_e3_bandwidth.
# This may be replaced when dependencies are built.
