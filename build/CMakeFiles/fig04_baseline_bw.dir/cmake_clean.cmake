file(REMOVE_RECURSE
  "CMakeFiles/fig04_baseline_bw.dir/bench/fig04_baseline_bw.cpp.o"
  "CMakeFiles/fig04_baseline_bw.dir/bench/fig04_baseline_bw.cpp.o.d"
  "bench/fig04_baseline_bw"
  "bench/fig04_baseline_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_baseline_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
