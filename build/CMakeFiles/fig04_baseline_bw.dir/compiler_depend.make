# Empty compiler generated dependencies file for fig04_baseline_bw.
# This may be replaced when dependencies are built.
