# Empty dependencies file for ablation_multidevice.
# This may be replaced when dependencies are built.
