file(REMOVE_RECURSE
  "CMakeFiles/ablation_multidevice.dir/bench/ablation_multidevice.cpp.o"
  "CMakeFiles/ablation_multidevice.dir/bench/ablation_multidevice.cpp.o.d"
  "bench/ablation_multidevice"
  "bench/ablation_multidevice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multidevice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
