file(REMOVE_RECURSE
  "CMakeFiles/fig01_nic_models.dir/bench/fig01_nic_models.cpp.o"
  "CMakeFiles/fig01_nic_models.dir/bench/fig01_nic_models.cpp.o.d"
  "bench/fig01_nic_models"
  "bench/fig01_nic_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_nic_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
