# Empty compiler generated dependencies file for fig01_nic_models.
# This may be replaced when dependencies are built.
