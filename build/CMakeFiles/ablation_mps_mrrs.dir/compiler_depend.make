# Empty compiler generated dependencies file for ablation_mps_mrrs.
# This may be replaced when dependencies are built.
