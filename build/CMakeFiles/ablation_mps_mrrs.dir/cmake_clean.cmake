file(REMOVE_RECURSE
  "CMakeFiles/ablation_mps_mrrs.dir/bench/ablation_mps_mrrs.cpp.o"
  "CMakeFiles/ablation_mps_mrrs.dir/bench/ablation_mps_mrrs.cpp.o.d"
  "bench/ablation_mps_mrrs"
  "bench/ablation_mps_mrrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mps_mrrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
