file(REMOVE_RECURSE
  "CMakeFiles/fig05_dma_latency.dir/bench/fig05_dma_latency.cpp.o"
  "CMakeFiles/fig05_dma_latency.dir/bench/fig05_dma_latency.cpp.o.d"
  "bench/fig05_dma_latency"
  "bench/fig05_dma_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_dma_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
