# Empty dependencies file for fig05_dma_latency.
# This may be replaced when dependencies are built.
