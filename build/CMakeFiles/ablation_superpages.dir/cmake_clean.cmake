file(REMOVE_RECURSE
  "CMakeFiles/ablation_superpages.dir/bench/ablation_superpages.cpp.o"
  "CMakeFiles/ablation_superpages.dir/bench/ablation_superpages.cpp.o.d"
  "bench/ablation_superpages"
  "bench/ablation_superpages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_superpages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
