# Empty dependencies file for ablation_superpages.
# This may be replaced when dependencies are built.
