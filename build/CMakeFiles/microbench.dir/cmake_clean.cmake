file(REMOVE_RECURSE
  "CMakeFiles/microbench.dir/bench/microbench.cpp.o"
  "CMakeFiles/microbench.dir/bench/microbench.cpp.o.d"
  "bench/microbench"
  "bench/microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
