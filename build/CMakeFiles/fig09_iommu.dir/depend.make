# Empty dependencies file for fig09_iommu.
# This may be replaced when dependencies are built.
