file(REMOVE_RECURSE
  "CMakeFiles/fig09_iommu.dir/bench/fig09_iommu.cpp.o"
  "CMakeFiles/fig09_iommu.dir/bench/fig09_iommu.cpp.o.d"
  "bench/fig09_iommu"
  "bench/fig09_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
