# Empty dependencies file for test_bandwidth_model.
# This may be replaced when dependencies are built.
