# Empty dependencies file for test_packetizer_configs.
# This may be replaced when dependencies are built.
