file(REMOVE_RECURSE
  "CMakeFiles/test_packetizer_configs.dir/test_packetizer_configs.cpp.o"
  "CMakeFiles/test_packetizer_configs.dir/test_packetizer_configs.cpp.o.d"
  "test_packetizer_configs"
  "test_packetizer_configs.pdb"
  "test_packetizer_configs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packetizer_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
