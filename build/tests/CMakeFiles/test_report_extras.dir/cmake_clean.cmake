file(REMOVE_RECURSE
  "CMakeFiles/test_report_extras.dir/test_report_extras.cpp.o"
  "CMakeFiles/test_report_extras.dir/test_report_extras.cpp.o.d"
  "test_report_extras"
  "test_report_extras.pdb"
  "test_report_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
