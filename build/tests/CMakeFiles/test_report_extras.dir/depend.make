# Empty dependencies file for test_report_extras.
# This may be replaced when dependencies are built.
