file(REMOVE_RECURSE
  "CMakeFiles/test_tlp.dir/test_tlp.cpp.o"
  "CMakeFiles/test_tlp.dir/test_tlp.cpp.o.d"
  "test_tlp"
  "test_tlp.pdb"
  "test_tlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
