# Empty dependencies file for test_tlp.
# This may be replaced when dependencies are built.
