# Empty dependencies file for test_latency_budget.
# This may be replaced when dependencies are built.
