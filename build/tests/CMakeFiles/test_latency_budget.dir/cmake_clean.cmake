file(REMOVE_RECURSE
  "CMakeFiles/test_latency_budget.dir/test_latency_budget.cpp.o"
  "CMakeFiles/test_latency_budget.dir/test_latency_budget.cpp.o.d"
  "test_latency_budget"
  "test_latency_budget.pdb"
  "test_latency_budget[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
