file(REMOVE_RECURSE
  "CMakeFiles/test_commodity.dir/test_commodity.cpp.o"
  "CMakeFiles/test_commodity.dir/test_commodity.cpp.o.d"
  "test_commodity"
  "test_commodity.pdb"
  "test_commodity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_commodity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
