# Empty dependencies file for test_commodity.
# This may be replaced when dependencies are built.
