file(REMOVE_RECURSE
  "CMakeFiles/test_interaction.dir/test_interaction.cpp.o"
  "CMakeFiles/test_interaction.dir/test_interaction.cpp.o.d"
  "test_interaction"
  "test_interaction.pdb"
  "test_interaction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
