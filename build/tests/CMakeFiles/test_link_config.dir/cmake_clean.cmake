file(REMOVE_RECURSE
  "CMakeFiles/test_link_config.dir/test_link_config.cpp.o"
  "CMakeFiles/test_link_config.dir/test_link_config.cpp.o.d"
  "test_link_config"
  "test_link_config.pdb"
  "test_link_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
