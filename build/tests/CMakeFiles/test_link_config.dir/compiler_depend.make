# Empty compiler generated dependencies file for test_link_config.
# This may be replaced when dependencies are built.
