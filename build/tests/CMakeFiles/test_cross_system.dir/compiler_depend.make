# Empty compiler generated dependencies file for test_cross_system.
# This may be replaced when dependencies are built.
