file(REMOVE_RECURSE
  "CMakeFiles/test_root_complex.dir/test_root_complex.cpp.o"
  "CMakeFiles/test_root_complex.dir/test_root_complex.cpp.o.d"
  "test_root_complex"
  "test_root_complex.pdb"
  "test_root_complex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_root_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
