# Empty compiler generated dependencies file for test_root_complex.
# This may be replaced when dependencies are built.
