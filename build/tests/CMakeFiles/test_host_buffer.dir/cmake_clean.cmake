file(REMOVE_RECURSE
  "CMakeFiles/test_host_buffer.dir/test_host_buffer.cpp.o"
  "CMakeFiles/test_host_buffer.dir/test_host_buffer.cpp.o.d"
  "test_host_buffer"
  "test_host_buffer.pdb"
  "test_host_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
