# Empty dependencies file for test_host_buffer.
# This may be replaced when dependencies are built.
