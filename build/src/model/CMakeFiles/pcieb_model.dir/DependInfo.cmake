
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/interaction.cpp" "src/model/CMakeFiles/pcieb_model.dir/interaction.cpp.o" "gcc" "src/model/CMakeFiles/pcieb_model.dir/interaction.cpp.o.d"
  "/root/repo/src/model/latency_budget.cpp" "src/model/CMakeFiles/pcieb_model.dir/latency_budget.cpp.o" "gcc" "src/model/CMakeFiles/pcieb_model.dir/latency_budget.cpp.o.d"
  "/root/repo/src/model/nic_models.cpp" "src/model/CMakeFiles/pcieb_model.dir/nic_models.cpp.o" "gcc" "src/model/CMakeFiles/pcieb_model.dir/nic_models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcie/CMakeFiles/pcieb_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcieb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
