file(REMOVE_RECURSE
  "CMakeFiles/pcieb_model.dir/interaction.cpp.o"
  "CMakeFiles/pcieb_model.dir/interaction.cpp.o.d"
  "CMakeFiles/pcieb_model.dir/latency_budget.cpp.o"
  "CMakeFiles/pcieb_model.dir/latency_budget.cpp.o.d"
  "CMakeFiles/pcieb_model.dir/nic_models.cpp.o"
  "CMakeFiles/pcieb_model.dir/nic_models.cpp.o.d"
  "libpcieb_model.a"
  "libpcieb_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcieb_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
