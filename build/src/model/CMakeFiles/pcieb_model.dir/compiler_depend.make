# Empty compiler generated dependencies file for pcieb_model.
# This may be replaced when dependencies are built.
