file(REMOVE_RECURSE
  "libpcieb_model.a"
)
