file(REMOVE_RECURSE
  "CMakeFiles/pcieb_proto.dir/bandwidth.cpp.o"
  "CMakeFiles/pcieb_proto.dir/bandwidth.cpp.o.d"
  "CMakeFiles/pcieb_proto.dir/flow_control.cpp.o"
  "CMakeFiles/pcieb_proto.dir/flow_control.cpp.o.d"
  "CMakeFiles/pcieb_proto.dir/link_config.cpp.o"
  "CMakeFiles/pcieb_proto.dir/link_config.cpp.o.d"
  "CMakeFiles/pcieb_proto.dir/packetizer.cpp.o"
  "CMakeFiles/pcieb_proto.dir/packetizer.cpp.o.d"
  "CMakeFiles/pcieb_proto.dir/tlp.cpp.o"
  "CMakeFiles/pcieb_proto.dir/tlp.cpp.o.d"
  "libpcieb_proto.a"
  "libpcieb_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcieb_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
