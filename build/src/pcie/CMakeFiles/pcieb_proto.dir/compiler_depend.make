# Empty compiler generated dependencies file for pcieb_proto.
# This may be replaced when dependencies are built.
