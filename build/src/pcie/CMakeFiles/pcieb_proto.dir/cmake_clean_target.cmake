file(REMOVE_RECURSE
  "libpcieb_proto.a"
)
