
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcie/bandwidth.cpp" "src/pcie/CMakeFiles/pcieb_proto.dir/bandwidth.cpp.o" "gcc" "src/pcie/CMakeFiles/pcieb_proto.dir/bandwidth.cpp.o.d"
  "/root/repo/src/pcie/flow_control.cpp" "src/pcie/CMakeFiles/pcieb_proto.dir/flow_control.cpp.o" "gcc" "src/pcie/CMakeFiles/pcieb_proto.dir/flow_control.cpp.o.d"
  "/root/repo/src/pcie/link_config.cpp" "src/pcie/CMakeFiles/pcieb_proto.dir/link_config.cpp.o" "gcc" "src/pcie/CMakeFiles/pcieb_proto.dir/link_config.cpp.o.d"
  "/root/repo/src/pcie/packetizer.cpp" "src/pcie/CMakeFiles/pcieb_proto.dir/packetizer.cpp.o" "gcc" "src/pcie/CMakeFiles/pcieb_proto.dir/packetizer.cpp.o.d"
  "/root/repo/src/pcie/tlp.cpp" "src/pcie/CMakeFiles/pcieb_proto.dir/tlp.cpp.o" "gcc" "src/pcie/CMakeFiles/pcieb_proto.dir/tlp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcieb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
