file(REMOVE_RECURSE
  "CMakeFiles/pcieb_nic.dir/commodity.cpp.o"
  "CMakeFiles/pcieb_nic.dir/commodity.cpp.o.d"
  "CMakeFiles/pcieb_nic.dir/loopback.cpp.o"
  "CMakeFiles/pcieb_nic.dir/loopback.cpp.o.d"
  "CMakeFiles/pcieb_nic.dir/nic_sim.cpp.o"
  "CMakeFiles/pcieb_nic.dir/nic_sim.cpp.o.d"
  "CMakeFiles/pcieb_nic.dir/ring.cpp.o"
  "CMakeFiles/pcieb_nic.dir/ring.cpp.o.d"
  "libpcieb_nic.a"
  "libpcieb_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcieb_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
