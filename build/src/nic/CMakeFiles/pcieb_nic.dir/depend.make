# Empty dependencies file for pcieb_nic.
# This may be replaced when dependencies are built.
