file(REMOVE_RECURSE
  "libpcieb_nic.a"
)
