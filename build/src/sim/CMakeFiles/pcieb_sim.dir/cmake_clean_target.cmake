file(REMOVE_RECURSE
  "libpcieb_sim.a"
)
