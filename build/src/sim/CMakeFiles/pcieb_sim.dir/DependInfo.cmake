
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/host_buffer.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/host_buffer.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/host_buffer.cpp.o.d"
  "/root/repo/src/sim/iommu.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/iommu.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/iommu.cpp.o.d"
  "/root/repo/src/sim/jitter.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/jitter.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/jitter.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/link.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/link.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/memory_system.cpp.o.d"
  "/root/repo/src/sim/multi_system.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/multi_system.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/multi_system.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/resource.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/resource.cpp.o.d"
  "/root/repo/src/sim/root_complex.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/root_complex.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/root_complex.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/switch.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/switch.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/switch.cpp.o.d"
  "/root/repo/src/sim/switched_system.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/switched_system.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/switched_system.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/sim/CMakeFiles/pcieb_sim.dir/system.cpp.o" "gcc" "src/sim/CMakeFiles/pcieb_sim.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcie/CMakeFiles/pcieb_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcieb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
