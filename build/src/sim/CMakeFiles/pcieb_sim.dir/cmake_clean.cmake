file(REMOVE_RECURSE
  "CMakeFiles/pcieb_sim.dir/cache.cpp.o"
  "CMakeFiles/pcieb_sim.dir/cache.cpp.o.d"
  "CMakeFiles/pcieb_sim.dir/device.cpp.o"
  "CMakeFiles/pcieb_sim.dir/device.cpp.o.d"
  "CMakeFiles/pcieb_sim.dir/host_buffer.cpp.o"
  "CMakeFiles/pcieb_sim.dir/host_buffer.cpp.o.d"
  "CMakeFiles/pcieb_sim.dir/iommu.cpp.o"
  "CMakeFiles/pcieb_sim.dir/iommu.cpp.o.d"
  "CMakeFiles/pcieb_sim.dir/jitter.cpp.o"
  "CMakeFiles/pcieb_sim.dir/jitter.cpp.o.d"
  "CMakeFiles/pcieb_sim.dir/link.cpp.o"
  "CMakeFiles/pcieb_sim.dir/link.cpp.o.d"
  "CMakeFiles/pcieb_sim.dir/memory_system.cpp.o"
  "CMakeFiles/pcieb_sim.dir/memory_system.cpp.o.d"
  "CMakeFiles/pcieb_sim.dir/multi_system.cpp.o"
  "CMakeFiles/pcieb_sim.dir/multi_system.cpp.o.d"
  "CMakeFiles/pcieb_sim.dir/resource.cpp.o"
  "CMakeFiles/pcieb_sim.dir/resource.cpp.o.d"
  "CMakeFiles/pcieb_sim.dir/root_complex.cpp.o"
  "CMakeFiles/pcieb_sim.dir/root_complex.cpp.o.d"
  "CMakeFiles/pcieb_sim.dir/simulator.cpp.o"
  "CMakeFiles/pcieb_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/pcieb_sim.dir/switch.cpp.o"
  "CMakeFiles/pcieb_sim.dir/switch.cpp.o.d"
  "CMakeFiles/pcieb_sim.dir/switched_system.cpp.o"
  "CMakeFiles/pcieb_sim.dir/switched_system.cpp.o.d"
  "CMakeFiles/pcieb_sim.dir/system.cpp.o"
  "CMakeFiles/pcieb_sim.dir/system.cpp.o.d"
  "libpcieb_sim.a"
  "libpcieb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcieb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
