# Empty dependencies file for pcieb_sim.
# This may be replaced when dependencies are built.
