file(REMOVE_RECURSE
  "libpcieb_common.a"
)
