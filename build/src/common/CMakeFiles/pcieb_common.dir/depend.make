# Empty dependencies file for pcieb_common.
# This may be replaced when dependencies are built.
