file(REMOVE_RECURSE
  "CMakeFiles/pcieb_common.dir/stats.cpp.o"
  "CMakeFiles/pcieb_common.dir/stats.cpp.o.d"
  "CMakeFiles/pcieb_common.dir/table.cpp.o"
  "CMakeFiles/pcieb_common.dir/table.cpp.o.d"
  "libpcieb_common.a"
  "libpcieb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcieb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
