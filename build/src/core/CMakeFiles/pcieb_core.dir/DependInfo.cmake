
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/addressing.cpp" "src/core/CMakeFiles/pcieb_core.dir/addressing.cpp.o" "gcc" "src/core/CMakeFiles/pcieb_core.dir/addressing.cpp.o.d"
  "/root/repo/src/core/multi_runner.cpp" "src/core/CMakeFiles/pcieb_core.dir/multi_runner.cpp.o" "gcc" "src/core/CMakeFiles/pcieb_core.dir/multi_runner.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/pcieb_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/pcieb_core.dir/params.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/pcieb_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/pcieb_core.dir/report.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/pcieb_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/pcieb_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/suite.cpp" "src/core/CMakeFiles/pcieb_core.dir/suite.cpp.o" "gcc" "src/core/CMakeFiles/pcieb_core.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sysconfig/CMakeFiles/pcieb_sysconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcieb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/pcieb_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcieb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
