# Empty dependencies file for pcieb_core.
# This may be replaced when dependencies are built.
