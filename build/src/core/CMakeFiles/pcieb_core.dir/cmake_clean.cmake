file(REMOVE_RECURSE
  "CMakeFiles/pcieb_core.dir/addressing.cpp.o"
  "CMakeFiles/pcieb_core.dir/addressing.cpp.o.d"
  "CMakeFiles/pcieb_core.dir/multi_runner.cpp.o"
  "CMakeFiles/pcieb_core.dir/multi_runner.cpp.o.d"
  "CMakeFiles/pcieb_core.dir/params.cpp.o"
  "CMakeFiles/pcieb_core.dir/params.cpp.o.d"
  "CMakeFiles/pcieb_core.dir/report.cpp.o"
  "CMakeFiles/pcieb_core.dir/report.cpp.o.d"
  "CMakeFiles/pcieb_core.dir/runner.cpp.o"
  "CMakeFiles/pcieb_core.dir/runner.cpp.o.d"
  "CMakeFiles/pcieb_core.dir/suite.cpp.o"
  "CMakeFiles/pcieb_core.dir/suite.cpp.o.d"
  "libpcieb_core.a"
  "libpcieb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcieb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
