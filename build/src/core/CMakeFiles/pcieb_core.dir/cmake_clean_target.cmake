file(REMOVE_RECURSE
  "libpcieb_core.a"
)
