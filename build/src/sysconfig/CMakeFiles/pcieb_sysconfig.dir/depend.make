# Empty dependencies file for pcieb_sysconfig.
# This may be replaced when dependencies are built.
