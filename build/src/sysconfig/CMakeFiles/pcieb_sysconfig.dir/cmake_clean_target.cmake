file(REMOVE_RECURSE
  "libpcieb_sysconfig.a"
)
