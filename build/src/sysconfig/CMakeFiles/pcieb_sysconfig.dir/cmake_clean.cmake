file(REMOVE_RECURSE
  "CMakeFiles/pcieb_sysconfig.dir/profiles.cpp.o"
  "CMakeFiles/pcieb_sysconfig.dir/profiles.cpp.o.d"
  "libpcieb_sysconfig.a"
  "libpcieb_sysconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcieb_sysconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
