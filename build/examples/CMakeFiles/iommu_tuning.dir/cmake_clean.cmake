file(REMOVE_RECURSE
  "CMakeFiles/iommu_tuning.dir/iommu_tuning.cpp.o"
  "CMakeFiles/iommu_tuning.dir/iommu_tuning.cpp.o.d"
  "iommu_tuning"
  "iommu_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iommu_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
