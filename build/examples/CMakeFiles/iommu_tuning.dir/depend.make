# Empty dependencies file for iommu_tuning.
# This may be replaced when dependencies are built.
