file(REMOVE_RECURSE
  "CMakeFiles/nic_design_space.dir/nic_design_space.cpp.o"
  "CMakeFiles/nic_design_space.dir/nic_design_space.cpp.o.d"
  "nic_design_space"
  "nic_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
