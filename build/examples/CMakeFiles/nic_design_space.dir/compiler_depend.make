# Empty compiler generated dependencies file for nic_design_space.
# This may be replaced when dependencies are built.
