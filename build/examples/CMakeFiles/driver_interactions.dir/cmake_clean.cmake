file(REMOVE_RECURSE
  "CMakeFiles/driver_interactions.dir/driver_interactions.cpp.o"
  "CMakeFiles/driver_interactions.dir/driver_interactions.cpp.o.d"
  "driver_interactions"
  "driver_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
