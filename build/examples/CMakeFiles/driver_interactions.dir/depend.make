# Empty dependencies file for driver_interactions.
# This may be replaced when dependencies are built.
