file(REMOVE_RECURSE
  "CMakeFiles/latency_budget.dir/latency_budget.cpp.o"
  "CMakeFiles/latency_budget.dir/latency_budget.cpp.o.d"
  "latency_budget"
  "latency_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
