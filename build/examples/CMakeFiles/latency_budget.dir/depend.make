# Empty dependencies file for latency_budget.
# This may be replaced when dependencies are built.
