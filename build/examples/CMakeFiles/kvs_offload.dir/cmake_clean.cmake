file(REMOVE_RECURSE
  "CMakeFiles/kvs_offload.dir/kvs_offload.cpp.o"
  "CMakeFiles/kvs_offload.dir/kvs_offload.cpp.o.d"
  "kvs_offload"
  "kvs_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvs_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
