# Empty compiler generated dependencies file for kvs_offload.
# This may be replaced when dependencies are built.
