// Figure 4: baseline DMA bandwidth (BW_RD / BW_WR / BW_RDWR) for the
// NFP6000-HSW and NetFPGA-HSW pairings against the §3 model and the
// 40GbE requirement. Warm 8 KB buffer, as in the paper.
#include <cstdio>

#include "bench_common.hpp"
#include "pcie/bandwidth.hpp"

int main() {
  using namespace pcieb;
  using core::BenchKind;
  bench::print_header(
      "Figure 4: baseline PCIe DMA bandwidth (warm 8 KB buffer)",
      "Paper: NetFPGA closely follows the model; NFP slightly below "
      "(internal staging and engine overheads); neither sustains 40GbE "
      "line rate for small-transfer reads.");

  const auto nfp = sys::nfp6000_hsw().config;
  const auto fpga = sys::netfpga_hsw().config;
  const auto link = nfp.link;

  struct Panel {
    const char* title;
    BenchKind kind;
    double (*model)(const proto::LinkConfig&, std::uint32_t, std::uint64_t);
  };
  const Panel panels[] = {
      {"(a) PCIe Read Bandwidth", BenchKind::BwRd, proto::effective_read_gbps},
      {"(b) PCIe Write Bandwidth", BenchKind::BwWr, proto::effective_write_gbps},
      {"(c) PCIe Read/Write Bandwidth", BenchKind::BwRdWr,
       proto::effective_rdwr_gbps},
  };

  for (const auto& panel : panels) {
    std::printf("--- %s ---\n", panel.title);
    TextTable table({"size_B", "model_Gbps", "40G_ethernet", "NFP6000-HSW",
                     "NetFPGA-HSW"});
    for (std::uint32_t sz : bench::transfer_ladder()) {
      bench::BandwidthSpec spec;
      spec.kind = panel.kind;
      spec.size = sz;
      spec.iterations = 25000;
      table.add_row({std::to_string(sz),
                     TextTable::num(panel.model(link, sz, 0)),
                     TextTable::num(proto::ethernet_pcie_demand_gbps(40.0, sz)),
                     TextTable::num(bench::run_bw_gbps(nfp, spec)),
                     TextTable::num(bench::run_bw_gbps(fpga, spec))});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
