// §6.2's bandwidth observations, which the paper describes but does not
// plot ("The differences are also reflected in the bandwidth benchmarks
// (not shown) where for DMA reads the Xeon E3 system only matches the
// Xeon E5 system for transfers larger than 512B and, for DMA writes,
// never achieves the throughput required for 40Gb/s Ethernet for any
// transfer size.").
#include <cstdio>

#include "bench_common.hpp"
#include "pcie/bandwidth.hpp"

int main() {
  using namespace pcieb;
  using core::BenchKind;
  bench::print_header(
      "Fig 6 companion: Xeon E3 vs E5 bandwidth (described in §6.2, not "
      "plotted in the paper)",
      "E3 reads match the E5 only above 512 B; E3 writes never reach the "
      "40GbE requirement at any size.");

  const auto e5 = sys::nfp6000_hsw().config;
  const auto e3 = sys::nfp6000_hsw_e3().config;

  TextTable table({"size_B", "E5_RD", "E3_RD", "E5_WR", "E3_WR",
                   "40G_demand", "E3_WR_meets_40G"});
  for (std::uint32_t sz : {64u, 128u, 256u, 512u, 1024u, 1536u, 2048u}) {
    auto run = [&](const sim::SystemConfig& cfg, BenchKind kind) {
      bench::BandwidthSpec spec;
      spec.kind = kind;
      spec.size = sz;
      spec.iterations = 20000;
      return bench::run_bw_gbps(cfg, spec);
    };
    const double demand = proto::ethernet_pcie_demand_gbps(40.0, sz);
    const double e3_wr = run(e3, BenchKind::BwWr);
    table.add_row({std::to_string(sz),
                   TextTable::num(run(e5, BenchKind::BwRd), 1),
                   TextTable::num(run(e3, BenchKind::BwRd), 1),
                   TextTable::num(run(e5, BenchKind::BwWr), 1),
                   TextTable::num(e3_wr, 1), TextTable::num(demand, 1),
                   e3_wr >= demand ? "yes (BUG)" : "no"});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
