// Figure 1: modeled bidirectional bandwidth of a PCIe Gen 3 x8 link for
// the effective-PCIe reference and three NIC/driver interaction models,
// against the 40GbE line-rate requirement.
#include <cstdio>

#include "bench_common.hpp"
#include "model/nic_models.hpp"
#include "pcie/bandwidth.hpp"

int main() {
  using namespace pcieb;
  bench::print_header(
      "Figure 1: modeled NIC/driver goodput on PCIe Gen 3 x8",
      "Paper: effective PCIe ~33->50 Gb/s; the Simple NIC reaches 40GbE "
      "line rate only above 512 B; driver optimizations (DPDK) recover "
      "several Gb/s over a kernel driver.");

  const auto cfg = proto::gen3_x8();
  const auto eff = model::effective_pcie();
  const auto simple = model::simple_nic();
  const auto kernel = model::modern_nic_kernel();
  const auto dpdk = model::modern_nic_dpdk();

  TextTable table({"size_B", "effective_pcie", "40G_ethernet", "simple_nic",
                   "modern_kernel", "modern_dpdk"});
  for (std::uint32_t sz = 64; sz <= 1280; sz += 32) {
    table.add_row({std::to_string(sz),
                   TextTable::num(model::bidirectional_goodput_gbps(cfg, eff, sz)),
                   TextTable::num(proto::ethernet_pcie_demand_gbps(40.0, sz)),
                   TextTable::num(model::bidirectional_goodput_gbps(cfg, simple, sz)),
                   TextTable::num(model::bidirectional_goodput_gbps(cfg, kernel, sz)),
                   TextTable::num(model::bidirectional_goodput_gbps(cfg, dpdk, sz))});
  }
  std::printf("%s\n", table.to_string().c_str());

  // The §2 crossover claims, restated from the model.
  const double d512 = proto::ethernet_pcie_demand_gbps(40.0, 512);
  const double s512 = model::bidirectional_goodput_gbps(cfg, simple, 512);
  std::printf("Simple NIC at 512 B: %.2f Gb/s vs 40GbE demand %.2f Gb/s "
              "(crossover at 512 B as in the paper)\n", s512, d512);
  return 0;
}
