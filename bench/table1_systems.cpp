// Table 1: the evaluated system configurations, as modelled.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcieb;
  bench::print_header("Table 1: system configurations",
                      "The six host/adapter pairings of the paper, as "
                      "simulation profiles. All systems have a 15 MB LLC "
                      "except NFP6000-BDW (25 MB).");

  TextTable table({"Name", "CPU", "NUMA", "Architecture", "Memory",
                   "OS/Kernel", "Network Adapter", "LLC_MB"});
  for (const auto& p : sys::all_profiles()) {
    table.add_row({p.name, p.cpu, p.numa_nodes > 1 ? "2-way" : "no", p.arch,
                   p.memory, p.os, p.adapter,
                   std::to_string(p.config.cache.size_bytes >> 20)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
