// Figure 9: IOMMU impact on DMA read bandwidth (NFP6000-BDW, warm cache,
// intel_iommu=on with superpages disabled i.e. 4 KB pages): percentage
// change vs the IOMMU-off baseline, per transfer size, across windows.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcieb;
  using core::BenchKind;
  bench::print_header(
      "Figure 9: IOMMU impact on DMA reads (NFP6000-BDW, warm, 4 KB pages)",
      "Paper: no impact up to a 256 KB window (64-entry IO-TLB x 4 KB), "
      "then 64 B reads drop by almost 70%, 256 B by ~30%, and 512 B+ are "
      "unaffected; the IO-TLB miss costs ~330 ns.");

  const auto base = sys::nfp6000_bdw().config;
  const auto on = sys::with_iommu(base, true, 4096);

  TextTable table({"window", "64B_%", "128B_%", "256B_%", "512B_%"});
  for (std::uint64_t w : bench::window_ladder()) {
    std::vector<std::string> row{bench::human_window(w)};
    for (std::uint32_t sz : {64u, 128u, 256u, 512u}) {
      bench::BandwidthSpec spec;
      spec.kind = BenchKind::BwRd;
      spec.size = sz;
      spec.window = w;
      spec.iterations = 25000;
      const double off = bench::run_bw_gbps(base, spec);
      const double with = bench::run_bw_gbps(on, spec);
      row.push_back(TextTable::num(core::pct_change(off, with), 1));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());

  // Latency view of the miss cost (§6.5: ~430 ns -> ~760 ns at 64 B).
  auto lat = [&](const sim::SystemConfig& cfg) {
    bench::LatencySpec spec;
    spec.size = 64;
    spec.window = 16ull << 20;
    spec.cmd_if = true;
    spec.iterations = 8000;
    return bench::run_latency(cfg, spec).summary.median_ns;
  };
  const double l_off = lat(base);
  const double l_on = lat(on);
  std::printf("64 B read latency, 16M window: %.0f ns (off) -> %.0f ns (on); "
              "IO-TLB miss + walk = %.0f ns\n", l_off, l_on, l_on - l_off);

  // Writes drop too, but less (§6.5: ~55%% at 64 B).
  bench::BandwidthSpec wr;
  wr.kind = BenchKind::BwWr;
  wr.size = 64;
  wr.window = 16ull << 20;
  const double w_off = bench::run_bw_gbps(base, wr);
  const double w_on = bench::run_bw_gbps(on, wr);
  std::printf("BW_WR 64B, 16M window: %.1f -> %.1f Gb/s (%+.1f%%)\n", w_off,
              w_on, core::pct_change(w_off, w_on));
  return 0;
}
