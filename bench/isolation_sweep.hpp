// Victim-tenant goodput and tail latency under a noisy neighbour with the
// SR-IOV isolation knobs individually ablated, shared between the
// ablation_isolation reproduction binary and the tier-2 snapshot test
// (tests/test_isolation_goodput_snapshot.cpp) so both always run the
// exact same configuration. The committed CSV lives at
// bench/expected/isolation_goodput.csv; regenerate it with
//   ./build/bench/ablation_isolation bench/expected/isolation_goodput.csv
//
// Every CSV column is an integer or enum string from the deterministic
// simulation, so the snapshot comparison is exact — any drift is a
// semantic change to the tenant, fault or recovery machinery, not
// numeric noise. The isolation=armed rows double as the containment
// contract: the victim columns must be identical whether the attacker's
// fault plan is "none" or a storm, which is the same differential
// identity the tenant chaos campaign verifies per-trial.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/tenant_runner.hpp"
#include "fault/plan.hpp"
#include "fault/recovery.hpp"
#include "sim/vf.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb::bench {

struct IsolationSweepRow {
  std::string isolation;  ///< knob set name ("armed", "no-tdm", ...)
  std::string faults;     ///< attacker fault plan ("none" = quiet neighbour)
  // Victim VF (vf1, the attacker's neighbour) measurement phase.
  std::uint64_t victim_p50_ps = 0;
  std::uint64_t victim_p99_ps = 0;
  std::uint64_t victim_payload = 0;
  std::uint64_t victim_lost = 0;
  std::int64_t victim_elapsed_ps = 0;
  // Attacker VF (vf0) damage and fabric-wide fallout.
  std::uint64_t attacker_lost = 0;
  std::uint64_t injected = 0;
  std::uint64_t device_wide_actions = 0;
};

inline sim::TenantIsolation isolation_by_name(const std::string& name) {
  sim::TenantIsolation iso;  // armed
  if (name == "armed") return iso;
  if (name == "no-tdm") iso.tdm_link = false;
  else if (name == "no-iotlb") iso.per_vf_iotlb = false;
  else if (name == "no-uncore") iso.per_vf_uncore = false;
  else if (name == "shared-recovery") iso.vf_scoped_recovery = false;
  else if (name == "weakened") iso = sim::TenantIsolation::all_weakened();
  return iso;
}

/// One point: four VFs of 256 B posted writes over per-VF 1 MB windows on
/// NFP6000-HSW, attacker vf0 carrying `faults` (every clause vf-scoped),
/// victim vf1 reported. With isolation armed the attacker's replay storms
/// serialize on its own TDM slice, miss storms evict only its IO-TLB
/// partition, and its recovery ladder derates only its own lane — the
/// victim columns stay constant across fault plans. Each ablated knob
/// opens one specific coupling path; `weakened` opens them all.
inline IsolationSweepRow run_isolation_sweep_point(const std::string& isolation,
                                                   const std::string& faults) {
  sim::MultiTenantConfig cfg;
  cfg.base = sys::profile_by_name("NFP6000-HSW").config;
  if (faults != "none") cfg.base.fault_plan = fault::parse_plan(faults);
  cfg.base.recovery = fault::parse_recovery_policy("default");
  cfg.tenants = 4;
  cfg.isolation = isolation_by_name(isolation);

  sim::MultiTenantSystem system(cfg);
  core::BenchParams p;
  p.kind = core::BenchKind::BwWr;
  p.transfer_size = 256;
  p.window_bytes = 1ull << 20;
  p.iterations = 1500;
  p.warmup = 0;  // keep fault nth counters aligned with the measured phase
  p.seed = 7;
  const auto results = core::run_tenant_bench(system, p);

  IsolationSweepRow row;
  row.isolation = isolation;
  row.faults = faults;
  const core::TenantResult& victim = results.at(1);
  row.victim_p50_ps = victim.latency.quantile(0.50);
  row.victim_p99_ps = victim.latency.quantile(0.99);
  row.victim_payload = victim.payload_bytes;
  row.victim_lost = victim.lost_payload_bytes;
  row.victim_elapsed_ps = victim.elapsed;
  row.attacker_lost = results.at(0).lost_payload_bytes;
  if (auto* inj = system.fault_injector()) row.injected = inj->injected_total();
  row.device_wide_actions = system.device_wide_actions();
  return row;
}

inline std::vector<IsolationSweepRow> run_isolation_sweep() {
  // Attacker intensity escalates from a quiet neighbour through a
  // correctable drizzle to a drop storm that keeps the attacker's lane in
  // replay and its ladder busy. Crossed with full isolation, each knob
  // ablated alone, and everything weakened at once.
  static const char* kFaults[] = {
      "none",
      "ack-loss@every=40,vf=0",
      "drop@every=15,dir=up,vf=0",
  };
  static const char* kIsolation[] = {
      "armed", "no-tdm", "no-iotlb", "no-uncore", "shared-recovery",
      "weakened",
  };
  std::vector<IsolationSweepRow> rows;
  for (const char* iso : kIsolation) {
    for (const char* faults : kFaults) {
      rows.push_back(run_isolation_sweep_point(iso, faults));
    }
  }
  return rows;
}

inline std::string isolation_sweep_csv(
    const std::vector<IsolationSweepRow>& rows) {
  std::string out =
      "isolation,faults,victim_p50_ps,victim_p99_ps,victim_payload,"
      "victim_lost,victim_elapsed_ps,attacker_lost,injected,"
      "device_wide_actions\n";
  for (const auto& r : rows) {
    // Fault specs contain commas; quote the spec cells unconditionally.
    char line[256];
    std::snprintf(line, sizeof line,
                  "\"%s\",\"%s\",%llu,%llu,%llu,%llu,%lld,%llu,%llu,%llu\n",
                  r.isolation.c_str(), r.faults.c_str(),
                  static_cast<unsigned long long>(r.victim_p50_ps),
                  static_cast<unsigned long long>(r.victim_p99_ps),
                  static_cast<unsigned long long>(r.victim_payload),
                  static_cast<unsigned long long>(r.victim_lost),
                  static_cast<long long>(r.victim_elapsed_ps),
                  static_cast<unsigned long long>(r.attacker_lost),
                  static_cast<unsigned long long>(r.injected),
                  static_cast<unsigned long long>(r.device_wide_actions));
    out += line;
  }
  return out;
}

}  // namespace pcieb::bench
