// Ablation: data-link-layer error recovery. PCIe's DLL retransmits
// corrupted TLPs transparently (§3), which clean testbeds never see —
// this sweep injects per-TLP replay probabilities and shows the cost in
// latency tail and bandwidth, e.g. a marginal riser or connector.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcieb;
  using core::BenchKind;
  bench::print_header(
      "Ablation: DLL replay injection (NetFPGA-HSW, 256 B transfers)",
      "Each replayed TLP occupies the wire twice plus an ack-timeout "
      "penalty; rare replays surface as a latency tail long before they "
      "dent throughput.");

  TextTable table({"replay_prob", "BW_WR_Gbps", "LAT_RD_med_ns",
                   "LAT_RD_p99_ns", "LAT_RD_max_ns"});
  for (double prob : {0.0, 1e-6, 1e-4, 1e-3, 1e-2, 0.1}) {
    auto cfg = sys::netfpga_hsw().config;
    cfg.link_faults.replay_probability = prob;

    bench::BandwidthSpec bw;
    bw.kind = BenchKind::BwWr;
    bw.size = 256;
    bw.iterations = 25000;
    const double gbps = bench::run_bw_gbps(cfg, bw);

    bench::LatencySpec lat;
    lat.size = 256;
    lat.iterations = 20000;
    const auto r = bench::run_latency(cfg, lat);

    table.add_row({TextTable::num(prob, 6), TextTable::num(gbps, 2),
                   TextTable::num(r.summary.median_ns, 0),
                   TextTable::num(r.summary.p99_ns, 0),
                   TextTable::num(r.summary.max_ns, 0)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
