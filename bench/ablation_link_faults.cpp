// Ablation: data-link-layer error recovery. PCIe's DLL retransmits
// corrupted TLPs transparently (§3), which clean testbeds never see —
// this sweep injects per-TLP fault probabilities and shows the cost in
// latency tail, bandwidth, and goodput, e.g. a marginal riser or
// connector.
//
// Two sections:
//  1. LCRC-corruption sweep (the legacy LinkFaultModel table, migrated
//     onto the fault_plan injector): each replayed TLP occupies the wire
//     twice plus a NAK round trip — rare replays surface as a latency
//     tail long before they dent throughput.
//  2. goodput vs injected error rate: drops lose payload for good (the
//     device retries reads, but posted writes are gone), corruption only
//     costs wire efficiency. Emitted as CSV; pass an output path to
//     regenerate the committed tier-2 snapshot
//     (bench/expected/fault_goodput.csv).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "fault_sweep.hpp"

int main(int argc, char** argv) {
  using namespace pcieb;
  using core::BenchKind;
  bench::print_header(
      "Ablation: DLL fault injection (NetFPGA-HSW, 256 B transfers)",
      "Each replayed TLP occupies the wire twice plus an ack-timeout "
      "penalty; rare replays surface as a latency tail long before they "
      "dent throughput. Dropped TLPs cost goodput instead.");

  TextTable table({"corrupt_prob", "BW_WR_Gbps", "LAT_RD_med_ns",
                   "LAT_RD_p99_ns", "LAT_RD_max_ns"});
  for (double prob : {0.0, 1e-6, 1e-4, 1e-3, 1e-2, 0.1}) {
    auto cfg = sys::netfpga_hsw().config;
    if (prob > 0.0) {
      char spec[48];
      std::snprintf(spec, sizeof spec, "corrupt@prob=%g", prob);
      cfg.fault_plan = fault::parse_plan(spec);
    }

    bench::BandwidthSpec bw;
    bw.kind = BenchKind::BwWr;
    bw.size = 256;
    bw.iterations = 25000;
    const double gbps = bench::run_bw_gbps(cfg, bw);

    bench::LatencySpec lat;
    lat.size = 256;
    lat.iterations = 20000;
    const auto r = bench::run_latency(cfg, lat);

    table.add_row({TextTable::num(prob, 6), TextTable::num(gbps, 2),
                   TextTable::num(r.summary.median_ns, 0),
                   TextTable::num(r.summary.p99_ns, 0),
                   TextTable::num(r.summary.max_ns, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("goodput vs injected error rate (BW_WR 256 B, dir=up):\n");
  const auto rows = bench::run_fault_sweep();
  TextTable curve({"kind", "rate", "offered_Gbps", "goodput_Gbps",
                   "wire_Gbps", "lost_B", "injected"});
  for (const auto& row : rows) {
    curve.add_row({row.kind, TextTable::num(row.rate, 6),
                   TextTable::num(row.result.gbps, 2),
                   TextTable::num(row.result.goodput_gbps, 2),
                   TextTable::num(row.result.wire_gbps, 2),
                   std::to_string(row.result.lost_payload_bytes),
                   std::to_string(row.injected)});
  }
  std::printf("%s", curve.to_string().c_str());

  if (argc > 1) {
    const std::string csv = bench::fault_sweep_csv(rows);
    std::FILE* f = std::fopen(argv[1], "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", argv[1]);
  }
  return 0;
}
