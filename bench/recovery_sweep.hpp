// Goodput under escalating faults with the recovery ladder off vs armed,
// shared between the ablation_recovery reproduction binary and the tier-2
// snapshot test (tests/test_recovery_goodput_snapshot.cpp) so both always
// run the exact same configuration. The committed CSV lives at
// bench/expected/recovery_goodput.csv; regenerate it with
//   ./build/bench/ablation_recovery bench/expected/recovery_goodput.csv
//
// Every CSV column is an integer or enum string from the deterministic
// simulation, so the snapshot comparison is exact — any drift is a
// semantic change to the fault or recovery machinery, not numeric noise.
// The policy=none rows double as the zero-cost check: they must match a
// run with no recovery code in the loop at all.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "fault/plan.hpp"
#include "fault/recovery.hpp"
#include "sim/system.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb::bench {

struct RecoverySweepRow {
  std::string faults;   ///< fault-plan spec ("none" for the baseline)
  std::string policy;   ///< recovery policy spec ("none" = ladder off)
  core::BandwidthResult result;
  std::uint64_t injected = 0;
  // Ladder outcome (all zero / "-" when the policy is "none").
  std::string final_state = "-";
  std::uint64_t transitions = 0;
  std::uint64_t flrs = 0;
  std::uint64_t hot_resets = 0;
  std::uint64_t quarantines = 0;
};

/// One BW_WR point: 256 B posted writes over a 1 MB window on
/// NFP6000-HSW with `faults` armed and `policy` driving the ladder.
/// A surprise link-down without recovery freezes the port for good —
/// everything after it is lost goodput; the armed ladder contains,
/// hot-resets and re-enumerates, trading a bounded outage for the rest
/// of the run. Non-fatal streaks cost an FLR window instead.
inline RecoverySweepRow run_recovery_sweep_point(const std::string& faults,
                                                 const std::string& policy) {
  auto cfg = sys::profile_by_name("NFP6000-HSW").config;
  if (faults != "none") cfg.fault_plan = fault::parse_plan(faults);
  cfg.recovery = fault::parse_recovery_policy(policy);
  sim::System system(cfg);
  core::BenchParams p;
  p.kind = core::BenchKind::BwWr;
  p.transfer_size = 256;
  p.window_bytes = 1ull << 20;
  p.iterations = 6000;
  p.warmup = 0;  // keep fault nth counters aligned with the measured phase
  p.seed = 7;
  RecoverySweepRow row;
  row.faults = faults;
  row.policy = policy;
  row.result = core::run_bandwidth_bench(system, p);
  if (auto* inj = system.fault_injector()) row.injected = inj->injected_total();
  if (const auto* rec = system.recovery()) {
    row.final_state = to_string(rec->state());
    row.transitions = rec->transitions();
    row.flrs = rec->flrs();
    row.hot_resets = rec->hot_resets();
    row.quarantines = rec->quarantines();
  }
  return row;
}

inline std::vector<RecoverySweepRow> run_recovery_sweep() {
  // Escalating severity: clean wire, a correctable-heavy storm, a
  // non-fatal streak, one mid-run link-down, then repeated link-downs
  // that exhaust a one-reset budget. Crossed with the ladder off, the
  // default policy, and the hair-trigger aggressive policy.
  static const char* kFaults[] = {
      "none",
      "ack-loss@every=25",
      "poison@every=150,dir=up",
      "linkdown@nth=3000",
  };
  std::vector<RecoverySweepRow> rows;
  for (const char* faults : kFaults) {
    for (const char* policy : {"none", "default", "aggressive"}) {
      rows.push_back(run_recovery_sweep_point(faults, policy));
    }
  }
  // Reset-budget exhaustion: the second link-down would need a second
  // hot reset, but max-resets=1 quarantines instead.
  rows.push_back(run_recovery_sweep_point("linkdown@nth=1000",
                                          "default,max-resets=0"));
  return rows;
}

inline std::string recovery_sweep_csv(const std::vector<RecoverySweepRow>& rows) {
  std::string out =
      "faults,policy,offered_bytes,lost_bytes,wire_bytes,elapsed_ps,"
      "injected,final_state,transitions,flrs,hot_resets,quarantines\n";
  for (const auto& r : rows) {
    // Fault and policy specs contain commas; quote them unconditionally.
    char line[256];
    std::snprintf(line, sizeof line,
                  "\"%s\",\"%s\",%llu,%llu,%llu,%lld,%llu,%s,%llu,%llu,%llu,%llu\n",
                  r.faults.c_str(), r.policy.c_str(),
                  static_cast<unsigned long long>(r.result.payload_bytes),
                  static_cast<unsigned long long>(r.result.lost_payload_bytes),
                  static_cast<unsigned long long>(r.result.wire_bytes),
                  static_cast<long long>(r.result.elapsed),
                  static_cast<unsigned long long>(r.injected),
                  r.final_state.c_str(),
                  static_cast<unsigned long long>(r.transitions),
                  static_cast<unsigned long long>(r.flrs),
                  static_cast<unsigned long long>(r.hot_resets),
                  static_cast<unsigned long long>(r.quarantines));
    out += line;
  }
  return out;
}

}  // namespace pcieb::bench
