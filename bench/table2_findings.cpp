// Table 2: the paper's notable findings, re-derived from measurements on
// the simulated systems rather than restated. Each row runs the relevant
// experiment and checks the observation holds.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcieb;
  using core::BenchKind;
  using core::CacheState;
  bench::print_header(
      "Table 2: notable findings, re-derived experimentally",
      "Each observation is re-measured; the recommendation follows §7.");

  const auto bdw = sys::nfp6000_bdw().config;
  const auto snb = sys::nfp6000_snb().config;
  int failures = 0;
  TextTable table({"Area", "Observation (measured)", "Holds",
                   "Recommendation"});

  {  // IOMMU: throughput collapses as the working set grows.
    const auto on = sys::with_iommu(bdw, true, 4096);
    bench::BandwidthSpec spec;
    spec.size = 64;
    spec.window = 128ull << 10;
    const double small_drop = core::pct_change(bench::run_bw_gbps(bdw, spec),
                                               bench::run_bw_gbps(on, spec));
    spec.window = 16ull << 20;
    const double big_drop = core::pct_change(bench::run_bw_gbps(bdw, spec),
                                             bench::run_bw_gbps(on, spec));
    const bool holds = small_drop > -5.0 && big_drop < -50.0;
    failures += !holds;
    char obs[128];
    std::snprintf(obs, sizeof obs,
                  "64B BW_RD %+.0f%% at 128K window, %+.0f%% at 16M", small_drop,
                  big_drop);
    table.add_row({"IOMMU (Fig 9)", obs, holds ? "yes" : "NO",
                   "Co-locate I/O buffers into superpages."});
  }
  {  // DDIO: small transactions faster when cache-resident.
    bench::LatencySpec spec;
    spec.size = 8;
    spec.window = 64ull << 10;
    spec.cmd_if = true;
    spec.iterations = 6000;
    spec.cache = CacheState::HostWarm;
    const double warm = bench::run_latency(snb, spec).summary.median_ns;
    spec.cache = CacheState::Thrash;
    const double cold = bench::run_latency(snb, spec).summary.median_ns;
    const bool holds = cold - warm > 40.0;
    failures += !holds;
    char obs[128];
    std::snprintf(obs, sizeof obs, "8B LAT_RD warm %.0f ns vs cold %.0f ns",
                  warm, cold);
    table.add_row({"DDIO (Fig 7)", obs, holds ? "yes" : "NO",
                   "DDIO speeds descriptor rings and small-packet receive."});
  }
  {  // NUMA small reads: remote cache reads cost ~20%.
    bench::BandwidthSpec spec;
    spec.size = 64;
    spec.window = 64ull << 10;
    spec.local = true;
    const double local = bench::run_bw_gbps(bdw, spec);
    spec.local = false;
    const double remote = bench::run_bw_gbps(bdw, spec);
    const double drop = core::pct_change(local, remote);
    const bool holds = drop < -10.0;
    failures += !holds;
    char obs[128];
    std::snprintf(obs, sizeof obs, "64B BW_RD local %.1f vs remote %.1f (%+.0f%%)",
                  local, remote, drop);
    table.add_row({"NUMA, small (Fig 8)", obs, holds ? "yes" : "NO",
                   "Place descriptor rings on the local node."});
  }
  {  // NUMA large transactions: locality does not matter.
    bench::BandwidthSpec spec;
    spec.size = 512;
    spec.window = 64ull << 10;
    spec.local = true;
    const double local = bench::run_bw_gbps(bdw, spec);
    spec.local = false;
    const double remote = bench::run_bw_gbps(bdw, spec);
    const bool holds = std::abs(core::pct_change(local, remote)) < 3.0;
    failures += !holds;
    char obs[128];
    std::snprintf(obs, sizeof obs, "512B BW_RD local %.1f vs remote %.1f",
                  local, remote);
    table.add_row({"NUMA, large (Fig 8)", obs, holds ? "yes" : "NO",
                   "Place packet buffers where processing happens."});
  }

  std::printf("%s\n", table.to_string().c_str());
  if (failures == 0) {
    std::printf("All findings hold.\n");
  } else {
    std::printf("%d finding(s) FAILED to reproduce!\n", failures);
  }
  return failures == 0 ? 0 : 1;
}
