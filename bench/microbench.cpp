// google-benchmark microbenchmarks for the library's hot paths: the
// packetizer (both the allocating and the caller-owned-TlpVec forms), the
// event engine and its SmallFn callable wrapper, the DMA in-flight map,
// the cache tag array and the RNG. These guard the simulator's own
// performance (a full figure sweep executes hundreds of millions of
// events); `pciebench perf` measures the same paths end to end.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "pcie/packetizer.hpp"
#include "pcie/tlp_vec.hpp"
#include "sim/cache.hpp"
#include "sim/flat_map.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/small_fn.hpp"
#include "sim/system.hpp"
#include "sysconfig/profiles.hpp"

namespace {

using namespace pcieb;

void BM_SegmentWrite(benchmark::State& state) {
  const auto cfg = proto::gen3_x8();
  const auto len = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::segment_write(cfg, 0x1000, len));
  }
}
BENCHMARK(BM_SegmentWrite)->Arg(64)->Arg(1500)->Arg(4096);

// The zero-copy form: one reusable caller-owned TlpVec, no allocation per
// call. Contrast with BM_SegmentWrite's returned std::vector.
void BM_SegmentWriteIntoTlpVec(benchmark::State& state) {
  const auto cfg = proto::gen3_x8();
  const auto len = static_cast<std::uint32_t>(state.range(0));
  proto::TlpVec out;
  for (auto _ : state) {
    out.clear();
    proto::segment_write(cfg, 0x1000, len, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentWriteIntoTlpVec)->Arg(64)->Arg(1500)->Arg(4096);

void BM_DmaReadBytes(benchmark::State& state) {
  const auto cfg = proto::gen3_x8();
  const auto len = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::dma_read_bytes(cfg, 0x1000, len));
  }
}
BENCHMARK(BM_DmaReadBytes)->Arg(64)->Arg(1500)->Arg(65536);

void BM_EventQueue(benchmark::State& state) {
  const auto depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < depth; ++i) {
      sim.at(static_cast<Picos>((i * 2654435761u) % 1000000), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(100000);

void BM_EventChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int hops = 0;
    std::function<void()> chain = [&] {
      if (++hops < 10000) sim.after(1, chain);
    };
    sim.after(0, chain);
    sim.run();
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventChain);

// SmallFn's fire-once cycle as the event loop drives it: emplace an
// inline-capture callable, then invoke+destroy in one dispatch.
void BM_SmallFnInlineConsume(benchmark::State& state) {
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::SmallFn fn;
    fn.emplace([&sink] { ++sink; });
    fn.invoke_consume();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmallFnInlineConsume);

// The >48 B spill path (one heap cell per emplace) — the cost cap for
// oversized captures, not a path figure sweeps hit.
void BM_SmallFnHeapConsume(benchmark::State& state) {
  struct Big {
    std::uint64_t* sink;
    unsigned char pad[72];
    void operator()() { ++*sink; }
  };
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::SmallFn fn;
    fn.emplace(Big{&sink, {}});
    fn.invoke_consume();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmallFnHeapConsume);

// The DMA engine's tag/dma_id bookkeeping shape: a sliding window of
// monotone keys, insert + find + erase per transaction.
void BM_FlatU32MapWindow(benchmark::State& state) {
  const auto window = static_cast<std::uint32_t>(state.range(0));
  sim::FlatU32Map<std::uint64_t> map;
  std::uint32_t next = 1;
  for (std::uint32_t i = 0; i < window; ++i) map.insert(next++, next);
  for (auto _ : state) {
    map.insert(next, next);
    benchmark::DoNotOptimize(map.find(next));
    map.erase(next - window);
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatU32MapWindow)->Arg(32)->Arg(256);

void BM_CacheProbe(benchmark::State& state) {
  sim::CacheConfig cfg;
  cfg.size_bytes = 15ull << 20;
  sim::LastLevelCache cache(cfg);
  Xoshiro256 rng(1);
  for (std::uint64_t i = 0; i < 100000; ++i) {
    cache.host_touch(i * 64, false);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.read_probe(rng.below(1 << 24) * 64));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheProbe);

void BM_CacheWriteAllocate(benchmark::State& state) {
  sim::CacheConfig cfg;
  cfg.size_bytes = 15ull << 20;
  sim::LastLevelCache cache(cfg);
  Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.write_allocate(rng.below(1 << 24) * 64));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheWriteAllocate);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro);

// The fault-predicate fast path: a sparse plan (one nth= rule far in the
// future, one bounded window already past) against a dense TLP stream.
// Every call should take the compiled gate's handful of branches, never
// the per-rule walk — this is the common no-match event in a chaos trial.
void BM_FaultGateNoMatch(benchmark::State& state) {
  fault::FaultPlan plan;
  fault::FaultRule nth;
  nth.kind = fault::FaultKind::LinkDrop;
  nth.nth = 1u << 30;  // never reached
  plan.rules.push_back(nth);
  fault::FaultRule window;
  window.kind = fault::FaultKind::Poison;
  window.from = from_nanos(10);
  window.until = from_nanos(20);  // already past
  plan.rules.push_back(window);
  fault::FaultInjector inj(plan);
  proto::Tlp tlp{proto::TlpType::MemWr, 0x1000, 64, 0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(inj.on_link_tx(tlp, true, from_micros(5)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultGateNoMatch);

// Comparison point: a prob= rule cannot be gated (every TLP must draw),
// so this measures the full per-rule walk plus the RNG draw.
void BM_FaultGateProbWalk(benchmark::State& state) {
  fault::FaultPlan plan;
  fault::FaultRule r;
  r.kind = fault::FaultKind::LinkCorrupt;
  r.prob = 1e-9;
  plan.rules.push_back(r);
  fault::FaultInjector inj(plan);
  proto::Tlp tlp{proto::TlpType::MemWr, 0x1000, 64, 0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(inj.on_link_tx(tlp, true, from_micros(5)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultGateProbWalk);

// Counter snapshot with raw uint64_t* readers vs std::function readers —
// the batching front replaced per-snapshot std::function hops with
// pointer dereferences for every monotonic total.
void BM_CounterSnapshotRaw(benchmark::State& state) {
  obs::CounterRegistry reg;
  std::uint64_t sources[32] = {};
  for (int i = 0; i < 32; ++i) {
    reg.add_counter("raw." + std::to_string(i), &sources[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.snapshot());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_CounterSnapshotRaw);

void BM_CounterSnapshotLambda(benchmark::State& state) {
  obs::CounterRegistry reg;
  std::uint64_t sources[32] = {};
  for (int i = 0; i < 32; ++i) {
    std::uint64_t* src = &sources[i];
    reg.add_counter("fn." + std::to_string(i),
                    [src] { return double(*src); });
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.snapshot());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_CounterSnapshotLambda);

// Trace staging: listener-free recording batches events 64 at a time
// before touching the bounded ring, so the per-event cost is one store
// plus a branch. The ring capacity is default (1<<16).
void BM_TraceRecordStaged(benchmark::State& state) {
  obs::TraceSink sink;
  obs::TraceEvent e{0, 1, 2, 3, 4, obs::EventKind::LinkTx,
                    obs::Component::LinkUp, 0};
  for (auto _ : state) {
    sink.record(e);
  }
  benchmark::DoNotOptimize(sink.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordStaged);

// Trial-reuse reset vs full rebuild of a Table-1 system — the chaos
// campaign's per-trial fixed cost (front 1 of hot-path round 3).
void BM_SystemRebuild(benchmark::State& state) {
  const auto& prof = sys::profile_by_name("NFP6000-HSW");
  for (auto _ : state) {
    sim::System system(prof.config);
    benchmark::DoNotOptimize(system.sim().now());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemRebuild);

void BM_SystemReset(benchmark::State& state) {
  const auto& prof = sys::profile_by_name("NFP6000-HSW");
  sim::System system(prof.config);
  for (auto _ : state) {
    system.reset(prof.config);
    benchmark::DoNotOptimize(system.sim().now());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemReset);

void BM_SerialResource(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::SerialResource res(sim);
    for (int i = 0; i < 1000; ++i) res.occupy(10);
    sim.run();
    benchmark::DoNotOptimize(res.busy_total());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SerialResource);

}  // namespace

BENCHMARK_MAIN();
