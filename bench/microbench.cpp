// google-benchmark microbenchmarks for the library's hot paths: the
// packetizer (both the allocating and the caller-owned-TlpVec forms), the
// event engine and its SmallFn callable wrapper, the DMA in-flight map,
// the cache tag array and the RNG. These guard the simulator's own
// performance (a full figure sweep executes hundreds of millions of
// events); `pciebench perf` measures the same paths end to end.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "pcie/packetizer.hpp"
#include "pcie/tlp_vec.hpp"
#include "sim/cache.hpp"
#include "sim/flat_map.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "sim/small_fn.hpp"

namespace {

using namespace pcieb;

void BM_SegmentWrite(benchmark::State& state) {
  const auto cfg = proto::gen3_x8();
  const auto len = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::segment_write(cfg, 0x1000, len));
  }
}
BENCHMARK(BM_SegmentWrite)->Arg(64)->Arg(1500)->Arg(4096);

// The zero-copy form: one reusable caller-owned TlpVec, no allocation per
// call. Contrast with BM_SegmentWrite's returned std::vector.
void BM_SegmentWriteIntoTlpVec(benchmark::State& state) {
  const auto cfg = proto::gen3_x8();
  const auto len = static_cast<std::uint32_t>(state.range(0));
  proto::TlpVec out;
  for (auto _ : state) {
    out.clear();
    proto::segment_write(cfg, 0x1000, len, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentWriteIntoTlpVec)->Arg(64)->Arg(1500)->Arg(4096);

void BM_DmaReadBytes(benchmark::State& state) {
  const auto cfg = proto::gen3_x8();
  const auto len = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::dma_read_bytes(cfg, 0x1000, len));
  }
}
BENCHMARK(BM_DmaReadBytes)->Arg(64)->Arg(1500)->Arg(65536);

void BM_EventQueue(benchmark::State& state) {
  const auto depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < depth; ++i) {
      sim.at(static_cast<Picos>((i * 2654435761u) % 1000000), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(100000);

void BM_EventChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int hops = 0;
    std::function<void()> chain = [&] {
      if (++hops < 10000) sim.after(1, chain);
    };
    sim.after(0, chain);
    sim.run();
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventChain);

// SmallFn's fire-once cycle as the event loop drives it: emplace an
// inline-capture callable, then invoke+destroy in one dispatch.
void BM_SmallFnInlineConsume(benchmark::State& state) {
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::SmallFn fn;
    fn.emplace([&sink] { ++sink; });
    fn.invoke_consume();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmallFnInlineConsume);

// The >48 B spill path (one heap cell per emplace) — the cost cap for
// oversized captures, not a path figure sweeps hit.
void BM_SmallFnHeapConsume(benchmark::State& state) {
  struct Big {
    std::uint64_t* sink;
    unsigned char pad[72];
    void operator()() { ++*sink; }
  };
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::SmallFn fn;
    fn.emplace(Big{&sink, {}});
    fn.invoke_consume();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SmallFnHeapConsume);

// The DMA engine's tag/dma_id bookkeeping shape: a sliding window of
// monotone keys, insert + find + erase per transaction.
void BM_FlatU32MapWindow(benchmark::State& state) {
  const auto window = static_cast<std::uint32_t>(state.range(0));
  sim::FlatU32Map<std::uint64_t> map;
  std::uint32_t next = 1;
  for (std::uint32_t i = 0; i < window; ++i) map.insert(next++, next);
  for (auto _ : state) {
    map.insert(next, next);
    benchmark::DoNotOptimize(map.find(next));
    map.erase(next - window);
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatU32MapWindow)->Arg(32)->Arg(256);

void BM_CacheProbe(benchmark::State& state) {
  sim::CacheConfig cfg;
  cfg.size_bytes = 15ull << 20;
  sim::LastLevelCache cache(cfg);
  Xoshiro256 rng(1);
  for (std::uint64_t i = 0; i < 100000; ++i) {
    cache.host_touch(i * 64, false);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.read_probe(rng.below(1 << 24) * 64));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheProbe);

void BM_CacheWriteAllocate(benchmark::State& state) {
  sim::CacheConfig cfg;
  cfg.size_bytes = 15ull << 20;
  sim::LastLevelCache cache(cfg);
  Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.write_allocate(rng.below(1 << 24) * 64));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheWriteAllocate);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro);

void BM_SerialResource(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::SerialResource res(sim);
    for (int i = 0; i < 1000; ++i) res.occupy(10);
    sim.run();
    benchmark::DoNotOptimize(res.busy_total());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SerialResource);

}  // namespace

BENCHMARK_MAIN();
