// Ablation: SR-IOV multi-tenant isolation. Four VFs share one physical
// port; vf0 runs a vf-scoped fault plan of escalating intensity while the
// other tenants run clean workloads. With every isolation mechanism
// armed — TDM virtual lanes, partitioned IO-TLB, per-VF uncore slices,
// VF-scoped recovery — the victim's latency and goodput columns are
// identical whether the neighbour is quiet or storming. Each ablated
// knob opens one coupling path (head-of-line blocking, IO-TLB eviction,
// LLC/bandwidth contention, device-wide recovery actions); `weakened`
// opens them all.
//
// Emitted as CSV; pass an output path to regenerate the committed tier-2
// snapshot (bench/expected/isolation_goodput.csv).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "isolation_sweep.hpp"

int main(int argc, char** argv) {
  using namespace pcieb;
  bench::print_header(
      "Ablation: SR-IOV tenant isolation (NFP6000-HSW, 4 VFs, 256 B writes)",
      "vf0 is the noisy neighbour, vf1 the reported victim. Armed rows "
      "must show identical victim columns across attacker fault plans — "
      "the same differential identity the tenant chaos campaign checks; "
      "each ablated knob shows which coupling path it closes.");

  const auto rows = bench::run_isolation_sweep();
  TextTable table({"isolation", "attacker_faults", "victim_p50_ns",
                   "victim_p99_ns", "victim_lost_B", "attacker_lost_B",
                   "injected", "device_wide"});
  for (const auto& row : rows) {
    table.add_row({row.isolation, row.faults,
                   TextTable::num(row.victim_p50_ps / 1000.0, 1),
                   TextTable::num(row.victim_p99_ps / 1000.0, 1),
                   std::to_string(row.victim_lost),
                   std::to_string(row.attacker_lost),
                   std::to_string(row.injected),
                   std::to_string(row.device_wide_actions)});
  }
  std::printf("%s", table.to_string().c_str());

  if (argc > 1) {
    const std::string csv = bench::isolation_sweep_csv(rows);
    std::FILE* f = std::fopen(argv[1], "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", argv[1]);
  }
  return 0;
}
