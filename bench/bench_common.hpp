// Shared helpers for the figure/table reproduction binaries.
//
// Each binary regenerates one table or figure of the paper as an aligned
// text table (one row per x value, one column per curve), plus a short
// header stating what the paper shows so the output is self-describing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb::bench {

/// The window-size ladder of Figures 7-9 (4 KB .. 64 MB).
inline std::vector<std::uint64_t> window_ladder() {
  return {4ull << 10,   16ull << 10,  64ull << 10,   256ull << 10,
          1024ull << 10, 4096ull << 10, 16384ull << 10, 65536ull << 10};
}

/// The transfer-size ladder of Figures 4-5, with the paper's -1/+1 B
/// probes around TLP-relevant boundaries.
inline std::vector<std::uint32_t> transfer_ladder() {
  return {64,  127, 128, 129, 192, 255, 256,  257,  384,
          511, 512, 513, 768, 1024, 1535, 1536, 2047, 2048};
}

inline std::string human_window(std::uint64_t bytes) {
  if (bytes >= (1ull << 20)) return std::to_string(bytes >> 20) + "M";
  return std::to_string(bytes >> 10) + "K";
}

struct LatencySpec {
  core::BenchKind kind = core::BenchKind::LatRd;
  std::uint32_t size = 64;
  std::uint64_t window = 8192;
  core::CacheState cache = core::CacheState::HostWarm;
  bool cmd_if = false;
  bool local = true;
  std::size_t iterations = 20000;
  std::size_t warmup = 0;
};

inline core::LatencyResult run_latency(const sim::SystemConfig& cfg,
                                       const LatencySpec& s) {
  sim::System system(cfg);
  core::BenchParams p;
  p.kind = s.kind;
  p.transfer_size = s.size;
  p.window_bytes = s.window;
  p.cache_state = s.cache;
  p.use_cmd_if = s.cmd_if;
  p.numa_local = s.local;
  p.iterations = s.iterations;
  p.warmup = s.warmup;
  return core::run_latency_bench(system, p);
}

struct BandwidthSpec {
  core::BenchKind kind = core::BenchKind::BwRd;
  std::uint32_t size = 64;
  std::uint64_t window = 8192;
  core::CacheState cache = core::CacheState::HostWarm;
  bool local = true;
  std::uint64_t page_bytes = 4096;
  std::size_t iterations = 30000;
  std::size_t warmup = 6000;
};

inline double run_bw_gbps(const sim::SystemConfig& cfg,
                          const BandwidthSpec& s) {
  sim::System system(cfg);
  core::BenchParams p;
  p.kind = s.kind;
  p.transfer_size = s.size;
  p.window_bytes = s.window;
  p.cache_state = s.cache;
  p.numa_local = s.local;
  p.page_bytes = s.page_bytes;
  p.iterations = s.iterations;
  p.warmup = s.warmup;
  return core::run_bandwidth_bench(system, p).gbps;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("%s\n\n", paper.c_str());
}

}  // namespace pcieb::bench
