// Ablation: error containment & recovery escalation ladder. A surprise
// link-down on a clean testbed kills the port — and without recovery,
// everything queued behind it — while AER-driven containment, hot reset
// and re-enumeration trade a bounded outage for the rest of the run.
// This sweep crosses escalating fault severities (correctable storm,
// non-fatal streak, mid-run link-down, reset-budget exhaustion) with the
// ladder off, the default policy, and the aggressive policy.
//
// Emitted as CSV; pass an output path to regenerate the committed tier-2
// snapshot (bench/expected/recovery_goodput.csv).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "recovery_sweep.hpp"

int main(int argc, char** argv) {
  using namespace pcieb;
  bench::print_header(
      "Ablation: recovery escalation ladder (NFP6000-HSW, 256 B writes)",
      "Without a policy a fatal error freezes the port for good; the "
      "ladder downtrains on correctable bursts, FLRs on non-fatal "
      "streaks, and contains + hot-resets on fatals — goodput dips for "
      "the outage window instead of flatlining.");

  const auto rows = bench::run_recovery_sweep();
  TextTable table({"faults", "policy", "goodput_Gbps", "lost_B", "injected",
                   "final_state", "flrs", "resets", "quarantines"});
  for (const auto& row : rows) {
    table.add_row({row.faults, row.policy,
                   TextTable::num(row.result.goodput_gbps, 2),
                   std::to_string(row.result.lost_payload_bytes),
                   std::to_string(row.injected), row.final_state,
                   std::to_string(row.flrs), std::to_string(row.hot_resets),
                   std::to_string(row.quarantines)});
  }
  std::printf("%s", table.to_string().c_str());

  if (argc > 1) {
    const std::string csv = bench::recovery_sweep_csv(rows);
    std::FILE* f = std::fopen(argv[1], "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", argv[1]);
  }
  return 0;
}
