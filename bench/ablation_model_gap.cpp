// Ablation: how tightly does the simulator track the §3 protocol model?
//
// Prints the sim/model goodput ratio for both adapter families across
// the transfer ladder and all three bandwidth kinds, in the model's
// domain (warm 8 KB buffer, NUMA-local, no IOMMU, no faults). This is
// the calibration source for the differential oracle's tolerance bands
// (src/check/oracle.cpp, docs/CHECKING.md): the oracle's lower bounds
// sit under the minima printed here with a regression margin, and its
// upper bound asserts the simulator never beats the protocol.
#include <cstdio>

#include "bench_common.hpp"
#include "pcie/bandwidth.hpp"

int main() {
  using namespace pcieb;
  using core::BenchKind;
  bench::print_header(
      "Ablation: simulator vs §3 protocol model (sim/model goodput ratio)",
      "The model is an upper bound (infinitely fast device and host); the "
      "simulator approaches it from below. NetFPGA tracks it closely; the "
      "NFP sits lower for small transfers (enqueue FIFO, staging hop).");

  struct Panel {
    const char* title;
    BenchKind kind;
    double (*model)(const proto::LinkConfig&, std::uint32_t, std::uint64_t);
  };
  const Panel panels[] = {
      {"(a) BW_RD", BenchKind::BwRd, proto::effective_read_gbps},
      {"(b) BW_WR", BenchKind::BwWr, proto::effective_write_gbps},
      {"(c) BW_RDWR", BenchKind::BwRdWr, proto::effective_rdwr_gbps},
  };

  const auto nfp = sys::nfp6000_hsw().config;
  const auto fpga = sys::netfpga_hsw().config;

  for (const auto& panel : panels) {
    std::printf("--- %s ---\n", panel.title);
    TextTable table({"size_B", "model_Gbps", "NFP_ratio", "NetFPGA_ratio"});
    for (std::uint32_t sz : bench::transfer_ladder()) {
      bench::BandwidthSpec spec;
      spec.kind = panel.kind;
      spec.size = sz;
      spec.iterations = 25000;
      const double model = panel.model(nfp.link, sz, 0);
      table.add_row({std::to_string(sz), TextTable::num(model),
                     TextTable::num(bench::run_bw_gbps(nfp, spec) / model),
                     TextTable::num(bench::run_bw_gbps(fpga, spec) / model)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
