// §5.5: pcie-bench on a commodity NIC in loopback mode. Varies the RX
// freelist window and compares the *relative* latency change against the
// programmable-device ground truth — showing the method works but carries
// descriptor-transfer noise, exactly as the paper predicts.
#include <cstdio>

#include "bench_common.hpp"
#include "nic/commodity.hpp"

int main() {
  using namespace pcieb;
  bench::print_header(
      "Ablation: commodity-NIC loopback probing (§5.5, NFP6000-SNB host)",
      "A non-programmable NIC can expose host cache behaviour by varying "
      "the freelist window, but every sample includes descriptor "
      "transfers; the LLC knee is visible yet less crisp than with "
      "programmable devices.");

  const auto cfg = sys::nfp6000_snb().config;

  TextTable table({"window", "commodity_warm_ns", "commodity_cold_ns",
                   "pciebench_warm_ns", "pciebench_cold_ns"});
  for (std::uint64_t w : bench::window_ladder()) {
    nic::CommodityProbeConfig probe;
    probe.frame_bytes = 64;
    probe.window_bytes = w;
    probe.iterations = 3000;
    probe.warm = true;
    sim::System s1(cfg);
    const auto warm = nic::run_commodity_probe(s1, probe);
    probe.warm = false;
    sim::System s2(cfg);
    const auto cold = nic::run_commodity_probe(s2, probe);

    bench::LatencySpec lat;
    lat.kind = core::BenchKind::LatRd;
    lat.size = 64;
    lat.window = w;
    lat.iterations = 3000;
    lat.cache = core::CacheState::HostWarm;
    const auto ref_warm = bench::run_latency(cfg, lat);
    lat.cache = core::CacheState::Thrash;
    const auto ref_cold = bench::run_latency(cfg, lat);

    table.add_row({bench::human_window(w),
                   TextTable::num(warm.per_packet.median_ns, 0),
                   TextTable::num(cold.per_packet.median_ns, 0),
                   TextTable::num(ref_warm.summary.median_ns, 0),
                   TextTable::num(ref_cold.summary.median_ns, 0)});
  }
  std::printf("%s\n", table.to_string().c_str());

  nic::CommodityProbeConfig probe;
  sim::System s(cfg);
  const auto r = nic::run_commodity_probe(s, probe);
  std::printf("Fixed descriptor overhead per probe sample: ~%.0f ns of link "
              "time plus three extra DMA round trips — why the paper calls "
              "commodity results 'less accurate'.\n",
              r.descriptor_overhead_ns);
  return 0;
}
