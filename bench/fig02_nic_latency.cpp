// Figure 2: NIC loopback latency and the PCIe contribution to it,
// measured on the simulated NetFPGA-HSW pairing (standing in for the
// paper's ExaNIC with firmware instrumentation).
#include <cstdio>

#include "bench_common.hpp"
#include "nic/loopback.hpp"

int main() {
  using namespace pcieb;
  bench::print_header(
      "Figure 2: NIC loopback latency vs PCIe contribution",
      "Paper (ExaNIC): ~1000 ns round trip at 128 B with PCIe contributing "
      "90.6% at small sizes, falling to 77.2% at 1500 B.");

  TextTable table({"size_B", "total_ns(median)", "pcie_ns(median)",
                   "pcie_share_%"});
  for (std::uint32_t f :
       {60u, 128u, 256u, 384u, 512u, 768u, 1024u, 1280u, 1514u}) {
    sim::System system(sys::netfpga_hsw().config);
    nic::LoopbackConfig cfg;
    cfg.frame_bytes = f;
    cfg.iterations = 2000;
    const auto r = nic::run_loopback(system, cfg);
    table.add_row({std::to_string(f), TextTable::num(r.total.median_ns, 0),
                   TextTable::num(r.pcie.median_ns, 0),
                   TextTable::num(100.0 * r.pcie_fraction, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
