// Ablation: open-loop overload — the hockey-stick goodput curve. The
// paper's benchmarks are closed-loop (the driver only offers what the
// rings can hold); real end hosts face an open-loop wire. This sweep
// offers 0.5x - 4x of the calibrated capacity through the same simulated
// PCIe RX datapath and shows where each overflow mechanism bites:
//
//  * no backpressure — goodput saturates at capacity and every excess
//    frame dies at the RX freelist (the classic rx_no_buffer drop) while
//    delivery latency plateaus at the full-ring queueing delay;
//  * MAC PAUSE — a bounded pause budget holds the sender off, converting
//    ring drops into sender-side throttling until the budget runs dry,
//    after which frames die at the MAC;
//  * busy-poll vs IRQ coalescing — the interrupt wakeup cost lowers the
//    calibrated capacity but the moderated path degrades just as
//    gracefully (no receive livelock — the overload monitors prove it).
//
// Pass an output path to regenerate the committed tier-2 snapshot
// (bench/expected/overload_goodput.csv).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "overload_sweep.hpp"

int main(int argc, char** argv) {
  using namespace pcieb;
  bench::print_header(
      "Ablation: open-loop overload (NetFPGA-HSW, 256 B frames)",
      "Offered load is a multiple of the per-service-model calibrated "
      "capacity. Without backpressure goodput saturates and excess frames "
      "drop at the RX freelist; MAC PAUSE trades drops for sender "
      "throttling until its budget is exhausted.");

  const auto rows = bench::run_overload_sweep();
  TextTable table({"service", "bp", "offered_x", "goodput_Gbps",
                   "delivered", "mac", "ring", "pause_us", "p99_us"});
  for (const auto& r : rows) {
    const auto& st = r.result.stats;
    table.add_row({nic::to_string(r.service), r.backpressure ? "on" : "off",
                   TextTable::num(r.offered_load, 1),
                   TextTable::num(r.result.goodput_gbps, 2),
                   std::to_string(st.delivered), std::to_string(st.dropped_mac),
                   std::to_string(st.dropped_ring),
                   TextTable::num(static_cast<double>(st.pause_ps) / 1e6, 1),
                   TextTable::num(
                       static_cast<double>(r.result.latency.quantile(0.99)) /
                           1e6,
                       1)});
  }
  std::printf("%s", table.to_string().c_str());

  if (argc > 1) {
    const std::string csv = bench::overload_sweep_csv(rows);
    std::FILE* f = std::fopen(argv[1], "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", argv[1]);
  }
  return 0;
}
