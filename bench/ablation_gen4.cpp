// Projection: PCIe Gen 4 and wider links (§6: "we expect the pcie-bench
// methodology to be equally applicable to other PCIe configurations
// including the next generation PCIe Gen 4 once hardware is available").
//
// Runs the analytic models and the simulator across Gen 3 x8 / x16 and
// Gen 4 x8 / x16 and reports which configurations sustain 100GbE and
// 2x40GbE full duplex per packet size.
#include <cstdio>

#include "bench_common.hpp"
#include "model/nic_models.hpp"
#include "pcie/bandwidth.hpp"

int main() {
  using namespace pcieb;
  bench::print_header(
      "Projection: PCIe Gen 4 and wider links for 100GbE-class NICs",
      "Gen 3 x8 cannot carry 100GbE at any packet size; Gen 3 x16 and "
      "Gen 4 x8 carry it only for large packets with an optimized "
      "device/driver; Gen 4 x16 has headroom.");

  struct LinkCase {
    const char* name;
    proto::Generation gen;
    unsigned lanes;
  };
  const LinkCase cases[] = {
      {"Gen3 x8", proto::Generation::Gen3, 8},
      {"Gen3 x16", proto::Generation::Gen3, 16},
      {"Gen4 x8", proto::Generation::Gen4, 8},
      {"Gen4 x16", proto::Generation::Gen4, 16},
  };

  const auto dpdk = model::modern_nic_dpdk();
  for (double wire : {40.0, 100.0}) {
    std::printf("--- %gGbE full duplex, Modern NIC (DPDK driver) ---\n", wire);
    TextTable table({"size_B", "demand_Gbps", "Gen3x8", "Gen3x16", "Gen4x8",
                     "Gen4x16"});
    for (std::uint32_t sz : {64u, 128u, 256u, 512u, 1024u, 1500u}) {
      std::vector<std::string> row{
          std::to_string(sz),
          TextTable::num(proto::ethernet_pcie_demand_gbps(wire, sz), 1)};
      for (const auto& c : cases) {
        proto::LinkConfig link = proto::gen3_x8();
        link.gen = c.gen;
        link.lanes = c.lanes;
        const double g = model::bidirectional_goodput_gbps(link, dpdk, sz);
        const bool ok = g >= proto::ethernet_pcie_demand_gbps(wire, sz);
        row.push_back(TextTable::num(g, 1) + (ok ? " ok" : " --"));
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // Simulated spot check: the same host profile with a Gen 4 x16 link.
  std::printf("--- simulated NetFPGA-class device on Gen4 x16 ---\n");
  TextTable sim_tbl({"size_B", "BW_RD_Gbps", "BW_WR_Gbps"});
  for (std::uint32_t sz : {256u, 1024u, 2048u}) {
    auto cfg = sys::netfpga_hsw().config;
    cfg.link.gen = proto::Generation::Gen4;
    cfg.link.lanes = 16;
    cfg.device.read_tags = 128;  // a Gen4-class engine needs deeper tags
    bench::BandwidthSpec spec;
    spec.size = sz;
    spec.iterations = 25000;
    spec.kind = core::BenchKind::BwRd;
    const double rd = bench::run_bw_gbps(cfg, spec);
    spec.kind = core::BenchKind::BwWr;
    const double wr = bench::run_bw_gbps(cfg, spec);
    sim_tbl.add_row({std::to_string(sz), TextTable::num(rd, 1),
                     TextTable::num(wr, 1)});
  }
  std::printf("%s", sim_tbl.to_string().c_str());
  return 0;
}
