// Goodput-vs-injected-error-rate sweep, shared between the
// ablation_link_faults reproduction binary and the tier-2 snapshot test
// (tests/test_fault_goodput_snapshot.cpp) so both always run the exact
// same configuration. The committed CSV lives at
// bench/expected/fault_goodput.csv; regenerate it with
//   ./build/bench/ablation_link_faults bench/expected/fault_goodput.csv
//
// Every CSV column is an integer from the deterministic simulation, so
// the snapshot comparison is exact — any drift is a semantic change to
// the fault machinery, not numeric noise.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "fault/plan.hpp"
#include "sim/system.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb::bench {

struct FaultSweepRow {
  std::string kind;  ///< "none", "drop" or "corrupt"
  double rate;       ///< per-TLP probability on the upstream link
  core::BandwidthResult result;
  std::uint64_t injected = 0;  ///< faults the injector actually fired
};

/// One BW_WR point: 256 B posted writes over a 1 MB window on
/// NetFPGA-HSW, with `kind@prob=rate,dir=up` armed. Drops cost goodput
/// (payload lost for good); corruption costs only wire efficiency (the
/// DLL replays it).
inline FaultSweepRow run_fault_sweep_point(const std::string& kind,
                                           double rate) {
  auto cfg = sys::netfpga_hsw().config;
  if (rate > 0.0) {
    char spec[64];
    std::snprintf(spec, sizeof spec, "%s@prob=%g,dir=up", kind.c_str(), rate);
    cfg.fault_plan = fault::parse_plan(spec);
  }
  sim::System system(cfg);
  core::BenchParams p;
  p.kind = core::BenchKind::BwWr;
  p.transfer_size = 256;
  p.window_bytes = 1ull << 20;
  p.iterations = 6000;
  p.warmup = 500;
  FaultSweepRow row;
  row.kind = rate > 0.0 ? kind : "none";
  row.rate = rate;
  row.result = core::run_bandwidth_bench(system, p);
  if (auto* inj = system.fault_injector()) row.injected = inj->injected_total();
  return row;
}

inline std::vector<FaultSweepRow> run_fault_sweep() {
  std::vector<FaultSweepRow> rows;
  rows.push_back(run_fault_sweep_point("none", 0.0));
  for (const char* kind : {"drop", "corrupt"}) {
    for (double rate : {1e-4, 1e-3, 1e-2}) {
      rows.push_back(run_fault_sweep_point(kind, rate));
    }
  }
  return rows;
}

inline std::string fault_sweep_csv(const std::vector<FaultSweepRow>& rows) {
  std::string out =
      "kind,rate,offered_bytes,lost_bytes,wire_bytes,elapsed_ps,injected\n";
  for (const auto& r : rows) {
    char line[192];
    std::snprintf(line, sizeof line, "%s,%g,%llu,%llu,%llu,%lld,%llu\n",
                  r.kind.c_str(), r.rate,
                  static_cast<unsigned long long>(r.result.payload_bytes),
                  static_cast<unsigned long long>(r.result.lost_payload_bytes),
                  static_cast<unsigned long long>(r.result.wire_bytes),
                  static_cast<long long>(r.result.elapsed),
                  static_cast<unsigned long long>(r.injected));
    out += line;
  }
  return out;
}

}  // namespace pcieb::bench
