// Figure 6: latency distribution of 64 B DMA reads with warm caches on a
// Xeon E5 (NFP6000-HSW) vs a Xeon E3 (NFP6000-HSW-E3) — 2 M transactions
// per system, as in the paper.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcieb;
  bench::print_header(
      "Figure 6: 64 B DMA read latency CDF, Xeon E5 vs Xeon E3 (warm)",
      "Paper: E5 min 520 / median 547 / 99.9% within 80 ns / max 947 ns. "
      "E3 min 493 / median 1213 / p99 5707 / p99.9 11987 ns, with rare "
      "millisecond-scale excursions up to 5.8 ms.");

  constexpr std::size_t kSamples = 2'000'000;

  auto run = [&](const sim::SystemConfig& cfg) {
    bench::LatencySpec spec;
    spec.size = 64;
    spec.iterations = kSamples;
    return bench::run_latency(cfg, spec);
  };
  const auto e5 = run(sys::nfp6000_hsw().config);
  const auto e3 = run(sys::nfp6000_hsw_e3().config);

  TextTable summary({"system", "min_ns", "median_ns", "p90", "p99", "p99.9",
                     "max_ns"});
  for (const auto* r : {&e5, &e3}) {
    summary.add_row({r == &e5 ? "NFP6000-HSW (E5)" : "NFP6000-HSW-E3",
                     TextTable::num(r->summary.min_ns, 0),
                     TextTable::num(r->summary.median_ns, 0),
                     TextTable::num(r->samples_ns.percentile(90), 0),
                     TextTable::num(r->summary.p99_ns, 0),
                     TextTable::num(r->summary.p999_ns, 0),
                     TextTable::num(r->summary.max_ns, 0)});
  }
  std::printf("%s\n", summary.to_string().c_str());

  std::printf("CDF (latency_ns at cumulative fraction):\n");
  TextTable cdf({"fraction", "E5_ns", "E3_ns"});
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.63, 0.75, 0.9, 0.95, 0.99, 0.999,
                   0.9999}) {
    cdf.add_row({TextTable::num(q, 4),
                 TextTable::num(e5.samples_ns.percentile(q * 100.0), 0),
                 TextTable::num(e3.samples_ns.percentile(q * 100.0), 0)});
  }
  std::printf("%s", cdf.to_string().c_str());
  return 0;
}
