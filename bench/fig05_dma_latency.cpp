// Figure 5: median DMA latency (min / 95th percentile as extra columns)
// vs transfer size for LAT_RD and LAT_WRRD on both devices.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcieb;
  using core::BenchKind;
  bench::print_header(
      "Figure 5: DMA latency vs transfer size (warm 8 KB buffer)",
      "Paper: 400-1600 ns band; NFP carries a ~100 ns fixed enqueue offset "
      "over the NetFPGA, widening with size (internal staging transfer); "
      "LAT_WRRD sits above LAT_RD.");

  const auto nfp = sys::nfp6000_hsw().config;
  const auto fpga = sys::netfpga_hsw().config;

  for (auto [kind, label] :
       {std::pair{BenchKind::LatRd, "LAT_RD"},
        std::pair{BenchKind::LatWrRd, "LAT_WRRD"}}) {
    std::printf("--- %s ---\n", label);
    TextTable table({"size_B", "NFP_med_ns", "NFP_min", "NFP_p95",
                     "NetFPGA_med_ns", "NetFPGA_min", "NetFPGA_p95"});
    for (std::uint32_t sz : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
      bench::LatencySpec spec;
      spec.kind = kind;
      spec.size = sz;
      spec.iterations = 8000;
      const auto a = bench::run_latency(nfp, spec);
      const auto b = bench::run_latency(fpga, spec);
      table.add_row({std::to_string(sz),
                     TextTable::num(a.summary.median_ns, 0),
                     TextTable::num(a.summary.min_ns, 0),
                     TextTable::num(a.summary.p95_ns, 0),
                     TextTable::num(b.summary.median_ns, 0),
                     TextTable::num(b.summary.min_ns, 0),
                     TextTable::num(b.summary.p95_ns, 0)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
