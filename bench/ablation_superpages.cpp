// Ablation: backing-page size under the IOMMU (§7's recommendation).
// Sweeps 4 KB / 2 MB / 1 GB pages across window sizes and shows the
// IO-TLB reach moving with the page size.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcieb;
  using core::BenchKind;
  bench::print_header(
      "Ablation: superpages vs the IOMMU cliff (NFP6000-BDW, 64 B reads)",
      "With 4 KB pages the 64-entry IO-TLB covers 256 KB; 2 MB superpages "
      "extend the reach to 128 MB and erase the cliff entirely for these "
      "windows, as does 1 GB. This is the paper's 'co-locate IO buffers "
      "into superpages' recommendation, quantified.");

  const auto base = sys::nfp6000_bdw().config;
  TextTable table({"window", "iommu_off_Gbps", "4K_pages", "2M_pages",
                   "1G_pages"});
  for (std::uint64_t w : bench::window_ladder()) {
    bench::BandwidthSpec spec;
    spec.kind = BenchKind::BwRd;
    spec.size = 64;
    spec.window = w;
    spec.iterations = 25000;
    std::vector<std::string> row{bench::human_window(w)};
    row.push_back(TextTable::num(bench::run_bw_gbps(base, spec), 1));
    for (std::uint64_t page : {4096ull, 2ull << 20, 1ull << 30}) {
      auto cfg = sys::with_iommu(base, true, page);
      bench::BandwidthSpec sp = spec;
      sp.page_bytes = page;
      row.push_back(TextTable::num(bench::run_bw_gbps(cfg, sp), 1));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
