// Figure 8: NUMA impact on DMA read bandwidth (NFP6000-BDW, warm cache):
// percentage change of remote-node vs local-node buffers, per transfer
// size, across window sizes.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcieb;
  using core::BenchKind;
  bench::print_header(
      "Figure 8: local vs remote DMA read bandwidth (NFP6000-BDW, warm)",
      "Paper: 64 B reads lose ~20% while cache-resident, ~10% beyond the "
      "LLC; 128/256 B lose ~5-7%; 512 B shows no penalty. Writes are "
      "unaffected by locality.");

  const auto cfg = sys::nfp6000_bdw().config;
  TextTable table({"window", "64B_%", "128B_%", "256B_%", "512B_%"});
  for (std::uint64_t w : bench::window_ladder()) {
    std::vector<std::string> row{bench::human_window(w)};
    for (std::uint32_t sz : {64u, 128u, 256u, 512u}) {
      bench::BandwidthSpec spec;
      spec.kind = BenchKind::BwRd;
      spec.size = sz;
      spec.window = w;
      spec.iterations = 25000;
      spec.local = true;
      const double local = bench::run_bw_gbps(cfg, spec);
      spec.local = false;
      const double remote = bench::run_bw_gbps(cfg, spec);
      row.push_back(TextTable::num(core::pct_change(local, remote), 1));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());

  // The write-locality claim, spot-checked at 64 B.
  bench::BandwidthSpec wr;
  wr.kind = BenchKind::BwWr;
  wr.size = 64;
  wr.window = 64ull << 10;
  wr.local = true;
  const double wl = bench::run_bw_gbps(cfg, wr);
  wr.local = false;
  const double wrem = bench::run_bw_gbps(cfg, wr);
  std::printf("BW_WR 64B local %.1f vs remote %.1f Gb/s (%+.1f%%) — "
              "writes land in the local DDIO cache regardless.\n",
              wl, wrem, core::pct_change(wl, wrem));
  return 0;
}
