// Hockey-stick overload sweep: goodput and tail latency vs offered load
// (0.5x - 4x of calibrated capacity) for each host service model
// (busy-poll vs IRQ coalescing) with MAC backpressure on and off. Shared
// between the ablation_overload reproduction binary and the tier-2
// snapshot test (tests/test_overload_goodput_snapshot.cpp) so both
// always run the exact same configuration. The committed CSV lives at
// bench/expected/overload_goodput.csv; regenerate it with
//   ./build/bench/ablation_overload bench/expected/overload_goodput.csv
//
// Every CSV column is an integer from the deterministic simulation, so
// the snapshot comparison is exact — any drift is a semantic change to
// the overload datapath, not numeric noise.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "nic/overload.hpp"
#include "sim/system.hpp"
#include "sysconfig/profiles.hpp"

namespace pcieb::bench {

struct OverloadSweepRow {
  double offered_load;  ///< multiple of calibrated capacity
  nic::ServiceMode service;
  bool backpressure;
  nic::OverloadResult result;
};

/// The sweep's shared datapath shape: 256 B frames through a 256-slot
/// freelist, no admission control (the pure ring-drop hockey stick).
inline nic::OverloadConfig overload_sweep_config() {
  nic::OverloadConfig cfg;
  cfg.frame_bytes = 256;
  cfg.ring_slots = 256;
  cfg.frames = 6000;
  cfg.admission_slots = 0;
  cfg.seed = 42;
  return cfg;
}

/// 0.5x/1x/2x/4x offered load x {poll, coalesce} x backpressure {off, on}
/// on NetFPGA-HSW. Capacity is calibrated once per service model (the
/// IRQ wakeup cost is part of the sustainable rate) and shared across
/// that model's points, so the x-axis means the same thing per curve.
inline std::vector<OverloadSweepRow> run_overload_sweep() {
  std::vector<OverloadSweepRow> rows;
  const auto sys_cfg = sys::netfpga_hsw().config;
  for (const auto service :
       {nic::ServiceMode::BusyPoll, nic::ServiceMode::Coalesce}) {
    nic::OverloadConfig base = overload_sweep_config();
    base.service = service;
    const std::uint64_t capacity = nic::calibrate_capacity(sys_cfg, base);
    for (const bool backpressure : {false, true}) {
      for (const double load : {0.5, 1.0, 2.0, 4.0}) {
        nic::OverloadConfig cfg = base;
        cfg.backpressure = backpressure;
        cfg.offered_load = load;
        cfg.capacity_pps = capacity;
        sim::System system(sys_cfg);
        rows.push_back(
            {load, service, backpressure, nic::run_overload(system, cfg)});
      }
    }
  }
  return rows;
}

inline std::string overload_sweep_csv(
    const std::vector<OverloadSweepRow>& rows) {
  std::string out =
      "offered_x1000,service,bp,capacity_pps,offered,delivered,mac,ring,"
      "admission,pause_ps,irqs,p50_ps,p99_ps\n";
  for (const auto& r : rows) {
    const auto& st = r.result.stats;
    char line[256];
    std::snprintf(
        line, sizeof line,
        "%lld,%s,%d,%llu,%llu,%llu,%llu,%llu,%llu,%lld,%llu,%llu,%llu\n",
        static_cast<long long>(r.offered_load * 1000.0),
        nic::to_string(r.service), r.backpressure ? 1 : 0,
        static_cast<unsigned long long>(r.result.capacity_pps),
        static_cast<unsigned long long>(st.offered),
        static_cast<unsigned long long>(st.delivered),
        static_cast<unsigned long long>(st.dropped_mac),
        static_cast<unsigned long long>(st.dropped_ring),
        static_cast<unsigned long long>(st.dropped_admission),
        static_cast<long long>(st.pause_ps),
        static_cast<unsigned long long>(st.irqs),
        static_cast<unsigned long long>(r.result.latency.quantile(0.5)),
        static_cast<unsigned long long>(r.result.latency.quantile(0.99)));
    out += line;
  }
  return out;
}

}  // namespace pcieb::bench
