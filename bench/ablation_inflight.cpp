// Ablation: how many concurrent DMA tags a device needs (§2/§7's
// in-flight budget). Sweeps the DMA engine's read-tag count and reports
// achieved 64/128 B read bandwidth against the 40GbE requirement, plus
// the analytic in-flight budget for comparison.
#include <cstdio>

#include "bench_common.hpp"
#include "model/latency_budget.hpp"
#include "pcie/bandwidth.hpp"

int main() {
  using namespace pcieb;
  using core::BenchKind;
  bench::print_header(
      "Ablation: DMA read tags vs achieved bandwidth (NFP6000-HSW host)",
      "Little's law in action: small reads are latency-bound, so tag count "
      "sets throughput until the link binds. The paper's budget: >= 30 "
      "in-flight DMAs for 40GbE at 128 B with ~900 ns latency.");

  TextTable table({"read_tags", "64B_Gbps", "128B_Gbps", "256B_Gbps",
                   "64B_meets_40G", "128B_meets_40G"});
  for (unsigned tags : {1u, 2u, 4u, 8u, 16u, 22u, 32u, 48u, 64u}) {
    auto cfg = sys::nfp6000_hsw().config;
    cfg.device.read_tags = tags;
    std::vector<double> g;
    for (std::uint32_t sz : {64u, 128u, 256u}) {
      bench::BandwidthSpec spec;
      spec.kind = BenchKind::BwRd;
      spec.size = sz;
      spec.iterations = 20000;
      g.push_back(bench::run_bw_gbps(cfg, spec));
    }
    table.add_row({std::to_string(tags), TextTable::num(g[0], 1),
                   TextTable::num(g[1], 1), TextTable::num(g[2], 1),
                   g[0] >= proto::ethernet_pcie_demand_gbps(40.0, 64) ? "yes" : "no",
                   g[1] >= proto::ethernet_pcie_demand_gbps(40.0, 128) ? "yes" : "no"});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Analytic budget (latency 547 ns): %u DMAs at 64 B, %u at 128 B; "
              "with an IOMMU miss (+330 ns): %u at 128 B.\n",
              model::required_inflight_dmas(547.0, 40.0, 64),
              model::required_inflight_dmas(547.0, 40.0, 128),
              model::required_inflight_dmas(877.0, 40.0, 128));
  return 0;
}
