// Ablation: unaligned DMA and access-pattern effects — the pcie-bench
// `offset` and `pattern` parameters (§4, Fig 3) that the paper's model
// deliberately does not cover ("the model does not account for PCIe
// overheads of unaligned DMA reads").
#include <cstdio>

#include "bench_common.hpp"
#include "pcie/packetizer.hpp"

int main() {
  using namespace pcieb;
  using core::BenchKind;
  bench::print_header(
      "Ablation: unaligned access and access patterns (NetFPGA-HSW)",
      "Reads starting off a Read Completion Boundary generate extra CplD "
      "TLPs (the RCB rule), costing bandwidth the analytic model ignores; "
      "sequential vs random access matters once the window leaves the LLC.");

  const auto cfg = sys::netfpga_hsw().config;

  std::printf("--- completion TLPs per read (RCB 64, MPS 256) ---\n");
  TextTable tlps({"size_B", "offset0", "offset4", "offset60"});
  for (std::uint32_t sz : {64u, 128u, 256u, 512u, 1024u}) {
    auto count = [&](std::uint32_t off) {
      std::size_t n = 0;
      for (const auto& req :
           proto::segment_read_requests(cfg.link, off, sz)) {
        n += proto::segment_completions(cfg.link, req.addr, req.read_len).size();
      }
      return n;
    };
    tlps.add_row({std::to_string(sz), std::to_string(count(0)),
                  std::to_string(count(4)), std::to_string(count(60))});
  }
  std::printf("%s\n", tlps.to_string().c_str());

  std::printf("--- measured read bandwidth vs offset (warm 8 KB window) ---\n");
  TextTable bw({"size_B", "aligned_Gbps", "offset4_Gbps", "offset60_Gbps",
                "penalty_%"});
  for (std::uint32_t sz : {64u, 128u, 256u, 512u}) {
    auto run = [&](std::uint32_t off) {
      sim::System system(cfg);
      core::BenchParams p;
      p.kind = BenchKind::BwRd;
      p.transfer_size = sz;
      p.offset = off;
      p.window_bytes = 16384;
      p.cache_state = core::CacheState::HostWarm;
      p.iterations = 25000;
      return core::run_bandwidth_bench(system, p).gbps;
    };
    const double a = run(0);
    const double b = run(4);
    const double c = run(60);
    bw.add_row({std::to_string(sz), TextTable::num(a, 1),
                TextTable::num(b, 1), TextTable::num(c, 1),
                TextTable::num(core::pct_change(a, c), 1)});
  }
  std::printf("%s\n", bw.to_string().c_str());

  std::printf("--- sequential vs random reads, 64 B cold ---\n");
  TextTable pat({"window", "sequential_Gbps", "random_Gbps"});
  for (std::uint64_t w : {64ull << 10, 16ull << 20, 64ull << 20}) {
    auto run = [&](core::AccessPattern pattern) {
      sim::System system(cfg);
      core::BenchParams p;
      p.kind = BenchKind::BwRd;
      p.transfer_size = 64;
      p.window_bytes = w;
      p.pattern = pattern;
      p.cache_state = core::CacheState::Thrash;
      p.iterations = 25000;
      return core::run_bandwidth_bench(system, p).gbps;
    };
    pat.add_row({bench::human_window(w),
                 TextTable::num(run(core::AccessPattern::Sequential), 1),
                 TextTable::num(run(core::AccessPattern::Random), 1)});
  }
  std::printf("%s", pat.to_string().c_str());
  return 0;
}
