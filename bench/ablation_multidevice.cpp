// §9 future-work study: multiple high-performance PCIe devices in one
// server. Each device has its own x8 link but shares the LLC, the DRAM
// channels, the IOMMU page walkers and — crucially — the IO-TLB.
//
// The experiment: N devices each read a 128 KB window of their own
// buffer (64 B transfers, warm). With the IOMMU off, devices barely
// interact (separate links, ample uncore). With the IOMMU on and 4 KB
// pages, each window needs 32 IO-TLB entries: one device fits in the
// 64-entry TLB, two fill it exactly, and four thrash it — per-device
// throughput collapses even though each device's window alone is within
// TLB reach. Superpages make the contention disappear.
#include <cstdio>

#include "bench_common.hpp"
#include "core/multi_runner.hpp"
#include "sim/multi_system.hpp"
#include "sim/switched_system.hpp"

int main() {
  using namespace pcieb;
  bench::print_header(
      "Ablation: multi-device IO-TLB sharing (NFP6000-BDW class host)",
      "Answers §9's open question: IO-TLB entries ARE shared between "
      "devices in this model — co-located devices evict each other's "
      "translations and queue on the shared page walkers.");

  const auto base = sys::nfp6000_bdw().config;

  TextTable table({"devices", "iommu", "pages", "per_device_Gbps",
                   "total_Gbps", "tlb_miss_rate_%"});
  for (unsigned devices : {1u, 2u, 4u}) {
    struct Cfg {
      const char* label;
      bool iommu;
      std::uint64_t pages;
    };
    for (const auto& c : {Cfg{"off", false, 4096ull},
                          Cfg{"on", true, 4096ull},
                          Cfg{"on", true, 2ull << 20}}) {
      auto host = c.iommu ? sys::with_iommu(base, true, c.pages) : base;
      sim::MultiDeviceSystem system(host, devices);
      core::MultiDeviceSpec spec;
      spec.kind = core::BenchKind::BwRd;
      spec.transfer_size = 64;
      spec.window_bytes = 128ull << 10;  // 32 pages at 4 KB
      spec.page_bytes = c.pages;
      spec.iterations = 15000;
      const auto r = core::run_multi_device_bandwidth(system, spec);
      const double miss_rate =
          r.tlb_hits + r.tlb_misses
              ? 100.0 * static_cast<double>(r.tlb_misses) /
                    static_cast<double>(r.tlb_hits + r.tlb_misses)
              : 0.0;
      table.add_row({std::to_string(devices), c.label,
                     c.pages == 4096 ? "4K" : "2M",
                     TextTable::num(r.per_device_gbps.front(), 1),
                     TextTable::num(r.total_gbps, 1),
                     TextTable::num(miss_rate, 1)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: with 4 KB pages, 1 device (32 pages) fits the 64-entry "
      "IO-TLB, 2 devices fill it exactly, 4 devices thrash it. 2 MB "
      "superpages collapse each window to a single entry.\n\n");

  // The other multi-device bottleneck: all devices behind one switch
  // sharing a single Gen 3 x8 uplink (IOMMU off). 512 B reads, so each
  // device alone could saturate the uplink.
  std::printf("--- shared-uplink topology (PCIe switch, 512 B reads) ---\n");
  TextTable sw({"devices", "per_device_Gbps", "total_Gbps",
                "independent_total_Gbps"});
  for (unsigned devices : {1u, 2u, 4u}) {
    core::MultiDeviceSpec spec;
    spec.kind = core::BenchKind::BwRd;
    spec.transfer_size = 512;
    spec.window_bytes = 128ull << 10;
    spec.iterations = 12000;
    sim::SwitchedSystem shared(base, devices);
    const auto rs = core::run_multi_device_bandwidth(shared, spec);
    sim::MultiDeviceSystem indep(base, devices);
    const auto ri = core::run_multi_device_bandwidth(indep, spec);
    sw.add_row({std::to_string(devices),
                TextTable::num(rs.per_device_gbps.front(), 1),
                TextTable::num(rs.total_gbps, 1),
                TextTable::num(ri.total_gbps, 1)});
  }
  std::printf("%s", sw.to_string().c_str());
  std::printf(
      "The switch shares one x8 uplink: total saturates at the link's "
      "effective rate and per-device shares divide, while independent "
      "links scale linearly.\n");
  return 0;
}
