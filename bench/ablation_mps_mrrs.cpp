// Ablation: sensitivity of effective bandwidth to the negotiated MPS and
// MRRS — the §3 model exercised across configurations, plus measured
// spot-checks on the simulator.
#include <cstdio>

#include "bench_common.hpp"
#include "pcie/bandwidth.hpp"

int main() {
  using namespace pcieb;
  using core::BenchKind;
  bench::print_header(
      "Ablation: MPS / MRRS sensitivity (model + simulated spot checks)",
      "Larger MPS amortizes the 24 B MWr header; larger MRRS reduces MRd "
      "request traffic. Values beyond 512 B help little for NIC-sized "
      "transfers.");

  std::printf("--- model: write goodput (Gb/s) ---\n");
  TextTable wr({"size_B", "MPS128", "MPS256", "MPS512", "MPS1024"});
  for (std::uint32_t sz : {64u, 256u, 512u, 1024u, 1500u, 4096u}) {
    std::vector<std::string> row{std::to_string(sz)};
    for (unsigned mps : {128u, 256u, 512u, 1024u}) {
      auto cfg = proto::gen3_x8();
      cfg.mps = mps;
      row.push_back(TextTable::num(proto::effective_write_gbps(cfg, sz)));
    }
    wr.add_row(std::move(row));
  }
  std::printf("%s\n", wr.to_string().c_str());

  std::printf("--- model: read goodput (Gb/s) ---\n");
  TextTable rd({"size_B", "MRRS256", "MRRS512", "MRRS1024", "MRRS4096"});
  for (std::uint32_t sz : {64u, 256u, 512u, 1024u, 1500u, 4096u}) {
    std::vector<std::string> row{std::to_string(sz)};
    for (unsigned mrrs : {256u, 512u, 1024u, 4096u}) {
      auto cfg = proto::gen3_x8();
      cfg.mrrs = mrrs;
      row.push_back(TextTable::num(proto::effective_read_gbps(cfg, sz)));
    }
    rd.add_row(std::move(row));
  }
  std::printf("%s\n", rd.to_string().c_str());

  std::printf("--- simulated: NetFPGA-HSW, 1024 B transfers ---\n");
  TextTable sim_tbl({"MPS", "BW_WR_Gbps", "BW_RD_Gbps"});
  for (unsigned mps : {128u, 256u, 512u}) {
    auto cfg = sys::netfpga_hsw().config;
    cfg.link.mps = mps;
    bench::BandwidthSpec spec;
    spec.size = 1024;
    spec.iterations = 20000;
    spec.kind = BenchKind::BwWr;
    const double w = bench::run_bw_gbps(cfg, spec);
    spec.kind = BenchKind::BwRd;
    const double r = bench::run_bw_gbps(cfg, spec);
    sim_tbl.add_row({std::to_string(mps), TextTable::num(w, 1),
                     TextTable::num(r, 1)});
  }
  std::printf("%s", sim_tbl.to_string().c_str());
  return 0;
}
