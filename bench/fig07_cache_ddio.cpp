// Figure 7: cache and DDIO effects on NFP6000-SNB.
//  (a) 8 B LAT_RD / LAT_WRRD, cold vs warm, across window sizes (via the
//      NFP's direct PCIe command interface, as in the paper);
//  (b) 64 B BW_RD / BW_WR, cold vs warm, across window sizes.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcieb;
  using core::BenchKind;
  using core::CacheState;
  bench::print_header(
      "Figure 7: cache effects on latency and bandwidth (NFP6000-SNB)",
      "Paper: warm reads ~70 ns faster until the window exceeds the 15 MB "
      "LLC; cold writes stay fast until the window exceeds the ~10% DDIO "
      "quota, then pay a ~70 ns dirty-line flush; BW_WR is insensitive to "
      "cache state; 64 B BW_RD gains from residency.");

  const auto cfg = sys::nfp6000_snb().config;

  std::printf("--- (a) 8 B latency, PCIe command interface ---\n");
  TextTable lat({"window", "RD_cold_ns", "RD_warm_ns", "WRRD_cold_ns",
                 "WRRD_warm_ns"});
  for (std::uint64_t w : bench::window_ladder()) {
    auto run = [&](BenchKind kind, CacheState cs) {
      bench::LatencySpec spec;
      spec.kind = kind;
      spec.size = 8;
      spec.window = w;
      spec.cache = cs;
      spec.cmd_if = true;
      spec.iterations = 12000;
      spec.warmup = 50000;  // settle the DDIO quota, as 2M-sample runs do
      return bench::run_latency(cfg, spec).summary.median_ns;
    };
    lat.add_row({bench::human_window(w),
                 TextTable::num(run(BenchKind::LatRd, CacheState::Thrash), 0),
                 TextTable::num(run(BenchKind::LatRd, CacheState::HostWarm), 0),
                 TextTable::num(run(BenchKind::LatWrRd, CacheState::Thrash), 0),
                 TextTable::num(run(BenchKind::LatWrRd, CacheState::HostWarm), 0)});
  }
  std::printf("%s\n", lat.to_string().c_str());

  std::printf("--- (b) 64 B bandwidth ---\n");
  TextTable bw({"window", "RD_cold_Gbps", "RD_warm_Gbps", "WR_cold_Gbps",
                "WR_warm_Gbps"});
  for (std::uint64_t w : bench::window_ladder()) {
    auto run = [&](BenchKind kind, CacheState cs) {
      bench::BandwidthSpec spec;
      spec.kind = kind;
      spec.size = 64;
      spec.window = w;
      spec.cache = cs;
      spec.iterations = 25000;
      return bench::run_bw_gbps(cfg, spec);
    };
    bw.add_row({bench::human_window(w),
                TextTable::num(run(BenchKind::BwRd, CacheState::Thrash), 1),
                TextTable::num(run(BenchKind::BwRd, CacheState::HostWarm), 1),
                TextTable::num(run(BenchKind::BwWr, CacheState::Thrash), 1),
                TextTable::num(run(BenchKind::BwWr, CacheState::HostWarm), 1)});
  }
  std::printf("%s", bw.to_string().c_str());
  return 0;
}
