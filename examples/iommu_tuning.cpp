// IOMMU tuning for a virtualized network appliance (§6.5/§7).
//
// Scenario: a packet-processing VM is assigned a NIC via the IOMMU. Its
// packet-buffer pool is far larger than the IO-TLB's 4 KB-page reach, so
// small-packet throughput collapses. The fix the paper recommends:
// co-locate the I/O buffers into superpages.
#include <cstdio>

#include "common/table.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "pcie/bandwidth.hpp"
#include "sysconfig/profiles.hpp"

namespace {

double measure(const pcieb::sim::SystemConfig& cfg, std::uint32_t pkt,
               std::uint64_t pool_bytes, std::uint64_t page_bytes) {
  pcieb::sim::System system(cfg);
  pcieb::core::BenchParams p;
  p.kind = pcieb::core::BenchKind::BwRd;  // NIC TX path: device reads buffers
  p.transfer_size = pkt;
  p.window_bytes = pool_bytes;
  p.cache_state = pcieb::core::CacheState::HostWarm;
  p.page_bytes = page_bytes;
  p.iterations = 25000;
  p.warmup = 5000;
  return pcieb::core::run_bandwidth_bench(system, p).gbps;
}

}  // namespace

int main() {
  using namespace pcieb;
  const std::uint64_t pool = 16ull << 20;  // 16 MB packet-buffer pool
  std::printf("Scenario: 16 MB VM packet pool behind the IOMMU "
              "(NFP6000-BDW host), NIC transmit path (DMA reads).\n\n");

  const auto base = sys::nfp6000_bdw().config;
  TextTable table({"pkt_B", "iommu_off", "4K_pages", "2M_superpages",
                   "4K_loss_%", "2M_loss_%", "40G_demand"});
  for (std::uint32_t pkt : {64u, 128u, 256u, 512u, 1024u}) {
    const double off = measure(base, pkt, pool, 4096);
    const double on4k =
        measure(sys::with_iommu(base, true, 4096), pkt, pool, 4096);
    const double on2m =
        measure(sys::with_iommu(base, true, 2ull << 20), pkt, pool, 2ull << 20);
    table.add_row({std::to_string(pkt), TextTable::num(off, 1),
                   TextTable::num(on4k, 1), TextTable::num(on2m, 1),
                   TextTable::num(core::pct_change(off, on4k), 1),
                   TextTable::num(core::pct_change(off, on2m), 1),
                   TextTable::num(proto::ethernet_pcie_demand_gbps(40.0, pkt), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "With 4 KB pages the 64-entry IO-TLB covers only 256 KB of the pool; "
      "2 MB superpages cover it 16x over, restoring the IOMMU-off numbers.\n"
      "Also note (§7): in multi-tenant assignment the IO-TLB is shared — "
      "isolation of I/O performance between VMs is not achievable.\n");
  return 0;
}
