// Design-space exploration for a custom programmable-NIC offload (§3/§7:
// "the model can and has been used to quickly assess the impact of
// alternatives when designing custom NIC functionality").
//
// Sweeps descriptor batching, write-back batching and doorbell batching
// through the analytic model, reports which configurations sustain 40GbE
// at 128 B full duplex, then validates the chosen design by running the
// executable NIC datapath on the simulator.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "model/nic_models.hpp"
#include "nic/nic_sim.hpp"
#include "pcie/bandwidth.hpp"
#include "sysconfig/profiles.hpp"

int main() {
  using namespace pcieb;
  const auto link = proto::gen3_x8();
  const std::uint32_t pkt = 128;
  const double demand = proto::ethernet_pcie_demand_gbps(40.0, pkt);
  std::printf("Target: full-duplex 40GbE at %u B packets -> %.2f Gb/s of "
              "PCIe goodput per direction.\n\n", pkt, demand);

  struct Candidate {
    model::ModernNicOptions opt;
    double goodput = 0.0;
  };
  std::vector<Candidate> winners;

  TextTable table({"desc_batch", "writeback", "doorbell", "goodput_Gbps",
                   "meets_40G"});
  for (unsigned desc : {1u, 4u, 8u, 16u, 32u}) {
    for (unsigned wb : {1u, 4u, 8u}) {
      for (unsigned db : {1u, 8u, 32u}) {
        model::ModernNicOptions opt;
        opt.desc_batch = desc;
        opt.tx_writeback_batch = wb;
        opt.rx_writeback_batch = wb;
        opt.doorbell_batch = db;
        // Poll-mode driver assumed: no interrupts to amortize.
        const double g = model::bidirectional_goodput_gbps(
            link, model::modern_nic_dpdk(opt), pkt);
        const bool ok = g >= demand;
        if (ok) winners.push_back({opt, g});
        table.add_row({std::to_string(desc), std::to_string(wb),
                       std::to_string(db), TextTable::num(g, 2),
                       ok ? "yes" : "no"});
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  if (winners.empty()) {
    std::printf("No configuration meets the target.\n");
    return 1;
  }
  // Prefer the *least* aggressive batching that still meets the target —
  // smaller batches mean lower latency and simpler on-chip state. But the
  // byte-accounting model ignores latency-bound effects (DMA tags,
  // descriptor fetch latency), so validate each candidate on the
  // executable datapath and escalate until one actually delivers.
  const auto cost = [](const model::ModernNicOptions& o) {
    return o.desc_batch + o.tx_writeback_batch + o.doorbell_batch;
  };
  std::sort(winners.begin(), winners.end(),
            [&](const Candidate& a, const Candidate& b) {
              return cost(a.opt) < cost(b.opt);
            });

  for (const auto& c : winners) {
    std::printf("Candidate desc_batch=%u writeback=%u doorbell=%u "
                "(model: %.2f Gb/s): ", c.opt.desc_batch,
                c.opt.tx_writeback_batch, c.opt.doorbell_batch, c.goodput);
    sim::System system(sys::netfpga_hsw().config);
    nic::NicSimConfig sim_cfg = nic::NicSimConfig::modern_dpdk();
    sim_cfg.frame_bytes = pkt;
    sim_cfg.desc_batch = c.opt.desc_batch;
    sim_cfg.tx_wb_batch = c.opt.tx_writeback_batch;
    sim_cfg.rx_wb_batch = c.opt.rx_writeback_batch;
    sim_cfg.doorbell_batch = c.opt.doorbell_batch;
    sim_cfg.packets = 20000;
    const auto r = nic::run_nic_sim(system, sim_cfg);
    std::printf("simulated TX %.2f / RX %.2f Gb/s, %llu drops -> ",
                r.tx_goodput_gbps, r.rx_goodput_gbps,
                static_cast<unsigned long long>(r.rx_dropped));
    if (r.per_direction_goodput_gbps >= demand * 0.95) {
      std::printf("ACCEPTED\n");
      std::printf("\nLesson: the analytic model prunes the space; the "
                  "simulator catches latency-bound shortfalls the byte "
                  "accounting cannot see.\n");
      return 0;
    }
    std::printf("insufficient, escalating\n");
  }
  std::printf("No candidate validated on the simulator.\n");
  return 1;
}
