// How many in-flight DMAs does a NIC need? (§2 and §7.)
//
// Combines measured DMA latency from the simulated systems with the
// analytic inter-packet budget to size DMA engines, rings and thread
// counts — the calculation Netronome used to dimension firmware.
#include <cstdio>

#include "common/table.hpp"
#include "core/runner.hpp"
#include "model/latency_budget.hpp"
#include "sysconfig/profiles.hpp"

int main() {
  using namespace pcieb;

  // Measure the 128 B DMA read latency on each Table 1 system.
  std::printf("Measured 128 B DMA read latency (warm), per system:\n");
  TextTable lat({"system", "median_ns", "p99_ns"});
  struct Row { std::string name; double med; double p99; };
  std::vector<Row> rows;
  for (const auto& prof : sys::all_profiles()) {
    sim::System system(prof.config);
    core::BenchParams p;
    p.kind = core::BenchKind::LatRd;
    p.transfer_size = 128;
    p.window_bytes = 8192;
    p.cache_state = core::CacheState::HostWarm;
    p.iterations = 4000;
    const auto r = core::run_latency_bench(system, p);
    rows.push_back({prof.name, r.summary.median_ns, r.summary.p99_ns});
    lat.add_row({prof.name, TextTable::num(r.summary.median_ns, 0),
                 TextTable::num(r.summary.p99_ns, 0)});
  }
  std::printf("%s\n", lat.to_string().c_str());

  // In-flight budget per wire rate, sized on the median and on the p99
  // (the paper: "the NIC has to handle at least 30 concurrent DMAs").
  std::printf("Required in-flight 128 B DMAs per direction:\n");
  TextTable budget({"system", "40G(med)", "40G(p99)", "100G(med)",
                    "40G(med,+IOMMU miss)"});
  for (const auto& row : rows) {
    budget.add_row(
        {row.name,
         std::to_string(model::required_inflight_dmas(row.med, 40.0, 128)),
         std::to_string(model::required_inflight_dmas(row.p99, 40.0, 128)),
         std::to_string(model::required_inflight_dmas(row.med, 100.0, 128)),
         std::to_string(
             model::required_inflight_dmas(row.med + 330.0, 40.0, 128))});
  }
  std::printf("%s\n", budget.to_string().c_str());

  // Cycle budget per DMA for firmware running on a 1.2 GHz NFP with a
  // varying number of worker threads.
  std::printf("Cycle budget per 128 B DMA at 40GbE line rate (1.2 GHz FPC):\n");
  TextTable cycles({"worker_threads", "cycles_per_dma"});
  for (unsigned workers : {1u, 8u, 24u, 48u, 96u}) {
    cycles.add_row({std::to_string(workers),
                    TextTable::num(model::cycle_budget_per_dma(40.0, 128,
                                                               workers, 1.2),
                                   0)});
  }
  std::printf("%s", cycles.to_string().c_str());
  return 0;
}
