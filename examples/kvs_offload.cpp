// Sizing a key-value-store NIC offload (the §1/§8 application class:
// KV-Direct, MICA, billion-RPS KVS servers).
//
// A KVS NIC answers GETs without host CPU involvement *only if* the value
// lives in NIC memory; otherwise it must fetch it from host DRAM over
// PCIe. This example uses the interaction model to budget PCIe for a
// GET-heavy workload, and the measured DMA latency to bound the
// achievable request rate per in-flight-state budget.
#include <cstdio>

#include "common/table.hpp"
#include "core/runner.hpp"
#include "model/interaction.hpp"
#include "model/latency_budget.hpp"
#include "pcie/bandwidth.hpp"
#include "sysconfig/profiles.hpp"

int main() {
  using namespace pcieb;
  const auto link = proto::gen3_x8();

  // Per-GET PCIe work when the value is fetched from host memory:
  //  * hash-bucket lookup: one 64 B DMA read (the index walk);
  //  * value fetch: one DMA read of the value size;
  //  * response descriptor write-back: 16 B, batched by 8;
  //  * request log write (for consistency): 32 B, batched by 16.
  auto kvs_get = [&](std::uint32_t value_bytes) {
    model::InteractionModel m;
    m.name = "KVS GET offload";
    m.tx_ops = [value_bytes](std::uint32_t) {
      return std::vector<model::PcieOp>{
          {model::OpKind::DmaRead, 64, 1.0, "bucket lookup"},
          {model::OpKind::DmaRead, value_bytes, 1.0, "value fetch"},
          {model::OpKind::DmaWrite, 128, 8.0, "response descriptors"},
          {model::OpKind::DmaWrite, 512, 16.0, "request log"},
      };
    };
    m.rx_ops = [](std::uint32_t) { return std::vector<model::PcieOp>{}; };
    return m;
  };

  std::printf("PCIe budget for host-memory GETs (Gen 3 x8):\n");
  TextTable table({"value_B", "M_gets_per_s", "goodput_Gbps",
                   "wire_40G_limited_Mrps"});
  for (std::uint32_t value : {16u, 64u, 256u, 1024u, 4096u}) {
    const auto m = kvs_get(value);
    // The GET rate the link sustains (packet size argument unused by ops).
    const double rate = model::max_symmetric_packet_rate(link, m, value);
    // The network side must also carry ~(value + 64 B header) per reply.
    const double wire_rate =
        40.0e9 / 8.0 / static_cast<double>(value + 64 + 24);
    table.add_row({std::to_string(value), TextTable::num(rate / 1e6, 1),
                   TextTable::num(rate * value * 8.0 / 1e9, 1),
                   TextTable::num(wire_rate / 1e6, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Latency side: how many concurrent GETs must the NIC track?
  sim::System system(sys::nfp6000_hsw().config);
  core::BenchParams p;
  p.kind = core::BenchKind::LatRd;
  p.transfer_size = 64;
  p.window_bytes = 64ull << 20;  // a large hash table: mostly cache misses
  p.cache_state = core::CacheState::Thrash;
  p.iterations = 5000;
  const auto lat = core::run_latency_bench(system, p);
  std::printf("Bucket-lookup DMA latency on a cold 64 MB table: median "
              "%.0f ns, p99 %.0f ns.\n", lat.summary.median_ns,
              lat.summary.p99_ns);

  // Two dependent DMAs per GET (bucket, then value): the state budget.
  TextTable inflight({"target_Mrps", "concurrent_GETs(median)",
                      "concurrent_GETs(p99)"});
  for (double mrps : {5.0, 10.0, 20.0}) {
    const double per_get_ns = 2.0 * lat.summary.median_ns;
    const double per_get_p99_ns = 2.0 * lat.summary.p99_ns;
    inflight.add_row(
        {TextTable::num(mrps, 0),
         TextTable::num(per_get_ns * mrps / 1e3, 0),
         TextTable::num(per_get_p99_ns * mrps / 1e3, 0)});
  }
  std::printf("%s", inflight.to_string().c_str());
  std::printf(
      "Each GET chains two dependent DMAs, so a 10 Mrps target needs "
      "~%.0f GET contexts live on the NIC — the §7 sizing argument, "
      "applied to a KVS instead of a packet pipeline.\n",
      2.0 * lat.summary.median_ns * 10.0 / 1e3);
  return 0;
}
