// Quickstart: the four things pcie-bench-sim does.
//
//  1. Model a device/driver interaction analytically (§3) — what goodput
//     can my design reach on a given PCIe configuration?
//  2. Measure latency micro-benchmarks on a simulated host (§4.1).
//  3. Measure bandwidth micro-benchmarks on a simulated host (§4.2).
//  4. Observe a run: trace every TLP, dump component counters, and
//     attribute the measured latency to pipeline stages (docs/OBSERVABILITY.md).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/observe.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "model/interaction.hpp"
#include "model/nic_models.hpp"
#include "pcie/bandwidth.hpp"
#include "sysconfig/profiles.hpp"

int main() {
  using namespace pcieb;

  // --- 1. analytic model ----------------------------------------------------
  // Describe a custom NIC: per packet it fetches a 16 B descriptor (in
  // batches of 16), DMAs the packet, and writes back an 8 B completion
  // (in batches of 8). The driver rings a doorbell every 16 packets.
  model::InteractionModel custom;
  custom.name = "my custom NIC";
  custom.tx_ops = [](std::uint32_t pkt) {
    return std::vector<model::PcieOp>{
        {model::OpKind::MmioWrite, 4, 16.0, "doorbell"},
        {model::OpKind::DmaRead, 256, 16.0, "descriptor batch"},
        {model::OpKind::DmaRead, pkt, 1.0, "packet"},
        {model::OpKind::DmaWrite, 64, 8.0, "completion batch"},
    };
  };
  custom.rx_ops = [](std::uint32_t pkt) {
    return std::vector<model::PcieOp>{
        {model::OpKind::MmioWrite, 4, 16.0, "freelist doorbell"},
        {model::OpKind::DmaRead, 256, 16.0, "freelist batch"},
        {model::OpKind::DmaWrite, pkt, 1.0, "packet"},
        {model::OpKind::DmaWrite, 64, 8.0, "rx descriptor batch"},
    };
  };

  const auto link = proto::gen3_x8();
  std::printf("Link: %s\n\n", link.describe().c_str());
  std::printf("%-28s %8s %8s %8s\n", "model @ pkt size", "128B", "256B", "1500B");
  for (const auto& m :
       {custom, model::simple_nic(), model::modern_nic_dpdk()}) {
    std::printf("%-28s %7.1fG %7.1fG %7.1fG\n", m.name.c_str(),
                model::bidirectional_goodput_gbps(link, m, 128),
                model::bidirectional_goodput_gbps(link, m, 256),
                model::bidirectional_goodput_gbps(link, m, 1500));
  }
  std::printf("40GbE demand                 %7.1fG %7.1fG %7.1fG\n\n",
              proto::ethernet_pcie_demand_gbps(40.0, 128),
              proto::ethernet_pcie_demand_gbps(40.0, 256),
              proto::ethernet_pcie_demand_gbps(40.0, 1500));

  // --- 2. latency micro-benchmark -------------------------------------------
  // LAT_RD: 64 B DMA reads from a warm 8 KB window on the NFP6000-HSW
  // pairing of Table 1.
  {
    sim::System system(sys::nfp6000_hsw().config);
    core::BenchParams p;
    p.kind = core::BenchKind::LatRd;
    p.transfer_size = 64;
    p.window_bytes = 8192;
    p.cache_state = core::CacheState::HostWarm;
    p.iterations = 20000;
    const auto r = core::run_latency_bench(system, p);
    std::printf("%s\n", core::format(r).c_str());
  }

  // --- 3. bandwidth micro-benchmark ------------------------------------------
  // BW_RDWR: alternating 512 B reads and writes.
  {
    sim::System system(sys::nfp6000_hsw().config);
    core::BenchParams p;
    p.kind = core::BenchKind::BwRdWr;
    p.transfer_size = 512;
    p.window_bytes = 8192;
    p.cache_state = core::CacheState::HostWarm;
    p.iterations = 30000;
    const auto r = core::run_bandwidth_bench(system, p);
    std::printf("%s\n", core::format(r).c_str());
  }

  // --- 4. observed run --------------------------------------------------------
  // Rerun the latency benchmark with tracing and breakdown attached; write
  // a Perfetto-loadable trace and account for every nanosecond by stage.
  {
    sim::System system(sys::nfp6000_hsw().config);
    core::ObsSession::Options opts;
    opts.trace = true;
    opts.breakdown = true;
    core::ObsSession obs(system, opts);

    core::BenchParams p;
    p.kind = core::BenchKind::LatRd;
    p.transfer_size = 64;
    p.window_bytes = 8192;
    p.cache_state = core::CacheState::HostWarm;
    p.iterations = 1000;
    core::run_latency_bench(system, p);

    obs.write_trace_json("quickstart_trace.json");
    std::printf("wrote quickstart_trace.json (%zu events; open in "
                "ui.perfetto.dev)\n",
                obs.sink()->size());
    std::printf("link.down.wire_bytes = %.0f\n",
                obs.counters().value("link.down.wire_bytes"));
    std::printf("%s", core::format_breakdown(obs.breakdown_report()).c_str());
  }
  return 0;
}
