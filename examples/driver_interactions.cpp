// Why poll-mode drivers avoid device registers (§3's footnote 6).
//
// A kernel driver learns about completed packets by reading a NIC
// register (MMIO read: a full PCIe round trip that stalls the CPU);
// DPDK-style drivers poll write-back descriptors in host memory instead
// (a cache hit once DDIO has landed the write). This example measures
// both costs on the simulated systems.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "sysconfig/profiles.hpp"

int main() {
  using namespace pcieb;
  std::printf("Cost of the driver's 'is there work?' check:\n\n");

  TextTable table({"system", "mmio_register_read_ns", "writeback_poll_ns",
                   "ratio"});
  for (const char* name : {"NFP6000-HSW", "NetFPGA-HSW", "NFP6000-HSW-E3"}) {
    const auto& prof = sys::profile_by_name(name);
    sim::System system(prof.config);
    auto& sim = system.sim();
    auto& rc = system.root_complex();

    // (a) MMIO register read: host -> device -> host round trip.
    SampleSet mmio;
    for (int i = 0; i < 2000; ++i) {
      const Picos t0 = sim.now();
      bool done = false;
      rc.host_mmio_read(0x40, 4, [&] {
        mmio.add(to_nanos(sim.now() - t0));
        done = true;
      });
      sim.run();
      if (!done) return 1;
    }

    // (b) Write-back descriptor poll: the host reads a cache line that
    // the device DMA-wrote — an LLC hit thanks to DDIO. Model: the LLC
    // access latency of this host (cores sit closer than the root
    // complex, so this bounds it from above).
    const double writeback_ns = to_nanos(prof.config.mem.llc_hit);

    table.add_row({name,
                   TextTable::num(mmio.median(), 0),
                   TextTable::num(writeback_ns, 0),
                   TextTable::num(mmio.median() / writeback_ns, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "An MMIO register read costs a full PCIe round trip — an order of "
      "magnitude more than polling a DDIO-resident write-back descriptor. "
      "That differential is most of the Fig 1 gap between the kernel and "
      "DPDK driver models at small packet sizes.\n");
  return 0;
}
