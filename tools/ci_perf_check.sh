#!/usr/bin/env bash
# Perf-regression gate (docs/PERFORMANCE.md): run `pciebench perf --quick`
# and assert the machine-independent half of its output — the exact event
# counts of each fixed workload. The simulator is deterministic, so any
# drift in these counts means the simulated workload itself changed, which
# must be a deliberate act (update the constants here AND in
# tests/test_perf_harness.cpp in the same commit, with the reason).
#
# Rates (events/sec, ns/TLP) are machine-dependent and are NOT gated;
# they land in the JSON report, which CI uploads as trajectory data.
#
# Usage: ci_perf_check.sh [path-to-pciebench] [json-output-path]
set -u

PCIEBENCH="${1:-./build/tools/pciebench}"
OUT="${2:-BENCH_perf_quick.json}"

# Quick-mode event counts (full-run counts for reference: fig04 2226000,
# fig05 2144000, chaos 1883153).
declare -A EXPECT=(
    [fig04_bw_sweep]=222600
    [fig05_latency]=214400
    [chaos_dry_run]=194702
)

if [[ ! -x "$PCIEBENCH" ]]; then
    echo "ci_perf_check: $PCIEBENCH not found or not executable" >&2
    exit 3
fi

echo "== pciebench perf --quick"
if ! "$PCIEBENCH" perf --quick --json "$OUT"; then
    echo "ci_perf_check: perf run failed" >&2
    exit 3
fi

fail=0
for workload in fig04_bw_sweep fig05_latency chaos_dry_run; do
    want="${EXPECT[$workload]}"
    # One object per line in the report:
    #   {"name": "fig04_bw_sweep", "events": 222600, "tlps": ...}
    line=$(grep "\"name\": \"$workload\"" "$OUT")
    if [[ -z "$line" ]]; then
        echo "ci_perf_check: FAIL: workload $workload missing from $OUT" >&2
        fail=1
        continue
    fi
    got=$(sed -n 's/.*"events": \([0-9]*\).*/\1/p' <<<"$line")
    if [[ "$got" != "$want" ]]; then
        echo "ci_perf_check: FAIL: $workload executed $got events," \
             "expected exactly $want — the simulated workload changed" >&2
        fail=1
    else
        echo "   $workload: $got events (exact match)"
    fi
done

if [[ $fail -ne 0 ]]; then
    exit 1
fi
echo "ok: all perf workloads executed their exact event counts" \
     "(rates recorded in $OUT)"
