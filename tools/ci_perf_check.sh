#!/usr/bin/env bash
# Perf-regression gate (docs/PERFORMANCE.md): run `pciebench perf --quick`
# and assert the machine-independent half of its output — the exact event
# counts of each fixed workload. The simulator is deterministic, so any
# drift in these counts means the simulated workload itself changed, which
# must be a deliberate act (update the constants here AND in
# tests/test_perf_harness.cpp in the same commit, with the reason).
#
# Rates (events/sec, ns/TLP) are machine-dependent and are NOT gated
# absolutely; they are appended to a history file (BENCH_history.jsonl,
# one JSON object per run) and gated as a TRENDLINE: the run fails when a
# workload's events/sec drops more than 15% below the best rate ever
# recorded on the same host class (arch + core count + quick/full mode).
# A host class with no recorded history only appends — first runs on a
# new machine can never flake.
#
# Usage: ci_perf_check.sh [path-to-pciebench] [json-output-path] [history]
# Env:   PCIEB_PERF_HOSTKEY  override the host-class key (CI runners with
#                            stable hardware should pin this)
#        PCIEB_PERF_NO_APPEND=1  gate against history without recording
set -u

PCIEBENCH="${1:-./build/tools/pciebench}"
OUT="${2:-BENCH_perf_quick.json}"
HISTORY="${3:-BENCH_history.jsonl}"
HOSTKEY="${PCIEB_PERF_HOSTKEY:-$(uname -m)-$(nproc)c}"
MODE=quick

# Quick-mode event counts (full-run counts for reference: fig04 2226000,
# fig05 2144000, chaos 1874425). Chaos counts last moved when linkdown
# joined the fault-kind pool (trial generation draws shifted).
declare -A EXPECT=(
    [fig04_bw_sweep]=222600
    [fig05_latency]=214400
    [chaos_dry_run]=194023
)

if [[ ! -x "$PCIEBENCH" ]]; then
    echo "ci_perf_check: $PCIEBENCH not found or not executable" >&2
    exit 3
fi

echo "== pciebench perf --quick"
if ! "$PCIEBENCH" perf --quick --json "$OUT"; then
    echo "ci_perf_check: perf run failed" >&2
    exit 3
fi

fail=0
declare -A RATE=()
for workload in fig04_bw_sweep fig05_latency chaos_dry_run; do
    want="${EXPECT[$workload]}"
    # One object per line in the report:
    #   {"name": "fig04_bw_sweep", "events": 222600, "tlps": ...}
    line=$(grep "\"name\": \"$workload\"" "$OUT")
    if [[ -z "$line" ]]; then
        echo "ci_perf_check: FAIL: workload $workload missing from $OUT" >&2
        fail=1
        continue
    fi
    got=$(sed -n 's/.*"events": \([0-9]*\).*/\1/p' <<<"$line")
    RATE[$workload]=$(sed -n 's/.*"events_per_sec": \([0-9.]*\).*/\1/p' \
                      <<<"$line")
    if [[ "$got" != "$want" ]]; then
        echo "ci_perf_check: FAIL: $workload executed $got events," \
             "expected exactly $want — the simulated workload changed" >&2
        fail=1
    else
        echo "   $workload: $got events (exact match)"
    fi
done

if [[ $fail -ne 0 ]]; then
    exit 1
fi

# -- Trendline gate: each workload's events/sec vs the best recorded rate
#    for this host class. 15% tolerance absorbs normal scheduler noise;
#    a real hot-path regression (the kind the profiler exists to localize)
#    overshoots it.
echo "== trendline vs $HISTORY (hostkey $HOSTKEY, mode $MODE)"
for workload in fig04_bw_sweep fig05_latency chaos_dry_run; do
    rate="${RATE[$workload]}"
    if [[ -z "$rate" ]]; then
        echo "ci_perf_check: FAIL: no events_per_sec for $workload in $OUT" >&2
        fail=1
        continue
    fi
    best=""
    if [[ -f "$HISTORY" ]]; then
        best=$(grep -F "\"hostkey\": \"$HOSTKEY\"" "$HISTORY" 2>/dev/null |
               grep -F "\"mode\": \"$MODE\"" |
               sed -n "s/.*\"$workload\": \([0-9.]*\).*/\1/p" |
               sort -g | tail -1)
    fi
    if [[ -z "$best" ]]; then
        echo "   $workload: $rate events/sec (no recorded history for" \
             "this host class; appending only)"
        continue
    fi
    if awk -v r="$rate" -v b="$best" 'BEGIN { exit !(r < 0.85 * b) }'; then
        echo "ci_perf_check: FAIL: $workload at $rate events/sec," \
             "> 15% below best recorded $best for $HOSTKEY" >&2
        fail=1
    else
        echo "   $workload: $rate events/sec (best recorded: $best)"
    fi
done

if [[ "${PCIEB_PERF_NO_APPEND:-0}" != "1" ]]; then
    printf '{"schema": "pcieb-perf-history-v1", "hostkey": "%s", "mode": "%s", "date": "%s", "fig04_bw_sweep": %s, "fig05_latency": %s, "chaos_dry_run": %s}\n' \
        "$HOSTKEY" "$MODE" "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
        "${RATE[fig04_bw_sweep]:-0}" "${RATE[fig05_latency]:-0}" \
        "${RATE[chaos_dry_run]:-0}" >> "$HISTORY"
    echo "   appended run to $HISTORY"
fi

if [[ $fail -ne 0 ]]; then
    exit 1
fi
echo "ok: all perf workloads executed their exact event counts and rates" \
     "are within 15% of the best recorded (trajectory in $OUT, $HISTORY)"
