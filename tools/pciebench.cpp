// pciebench — command-line control program, the equivalent of the
// paper's §5.4 user-space tools: run individual micro-benchmarks or full
// suites against any Table 1 system profile, with optional IOMMU
// configuration, and emit summaries, CDFs, histograms, time series or CSV.
//
// Examples:
//   pciebench list-systems
//   pciebench run --system NFP6000-HSW --bench LAT_RD --size 64
//       --window 8K --cache warm --iters 20000 --cdf --breakdown
//   pciebench run --system NFP6000-BDW --bench BW_RD --size 64
//       --window 16M --iommu on --pages 4K --counters out.csv
//   pciebench run --system NetFPGA-HSW --bench BW_WR --size 256
//       --window 1M --faults "drop@every=1000,dir=up" --errors
//   pciebench suite --system NFP6000-SNB --filter BW_RD --csv out.csv
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/campaign_exec.hpp"
#include "check/chaos.hpp"
#include "check/monitors.hpp"
#include "check/overload_monitors.hpp"
#include "check/perf.hpp"
#include "check/tenant_monitors.hpp"
#include "core/tenant_runner.hpp"
#include "core/multi_runner.hpp"
#include "core/observe.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "core/suite.hpp"
#include "exec/outcome.hpp"
#include "exec/pool.hpp"
#include "exec/thread_pool.hpp"
#include "fault/plan.hpp"
#include "fault/recovery.hpp"
#include "nic/overload.hpp"
#include "sysconfig/profiles.hpp"

namespace {

using namespace pcieb;

// Exit codes, uniform across subcommands (docs/EXEC.md):
//   0 — success
//   1 — benchmark failure / invariant violation
//   2 — usage error (bad flags, unknown system, malformed specs)
//   3 — infrastructure or worker error (journal I/O, quarantined jobs)
constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInfra = 3;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(usage:
  pciebench list-systems
  pciebench run --system NAME --bench KIND [options]
  pciebench suite --system NAME [--filter STR] [--csv FILE] [exec options]
  pciebench chaos [--trials N] [--master-seed N] [--iters N] [--no-shrink]
                  [exec options] [--csv FILE] [--artifacts DIR]
  pciebench overload --system NAME [--offered-load X] [--service-mode M]
                  [--backpressure on|off] [options]
  pciebench perf  [--quick] [--json FILE] [--profile]

run options:
  --bench KIND      LAT_RD | LAT_WRRD | BW_RD | BW_WR | BW_RDWR
  --size N          transfer size in bytes            (default 64)
  --offset N        offset within a cache line        (default 0)
  --window SZ       window size, e.g. 8K, 1M, 64M     (default 8K)
  --pattern P       rand | seq                        (default rand)
  --cache S         warm | cold | device              (default warm)
  --numa L          local | remote                    (default local)
  --iommu S         on | off                          (default off)
  --pages SZ        4K | 2M | 1G backing pages        (default 4K)
  --iters N         measured transactions             (default 20000)
  --warmup N        unmeasured lead-in transactions   (default 0)
  --cmd-if          use the NFP direct command interface
  --seed N          RNG seed                          (default 42)
  --cdf             print the latency CDF
  --histogram       print a latency histogram
  --timeseries      print a thinned latency time series

observability options (run):
  --trace FILE      write a Chrome trace-event JSON (ui.perfetto.dev)
  --counters DEST   dump component counters: CSV file, or - for stdout
  --breakdown       per-stage latency attribution (serial reads), with the
                    model's stage budget alongside when it applies
  --telemetry[=FILE]
                    stream per-interval counter deltas over sim time; bare
                    prints the CSV to stdout, =FILE writes CSV (JSON when
                    FILE ends in .json). Combined with --trace the counter
                    tracks are embedded in the Chrome JSON; combined with
                    --breakdown the per-stage latency digests are printed
  --telemetry-interval PS
                    sampling interval in sim picoseconds (default 1000000
                    = 1 us; requires --telemetry)

fault-injection options (run):
  --faults SPEC     arm a deterministic fault plan; SPEC is ';'-separated
                    rules, e.g. "corrupt@prob=1e-3;drop@nth=100,dir=down"
                    (grammar: docs/FAULTS.md). Arms completion timeouts,
                    retries and the deadlock watchdog.
  --fault-seed N    seed for probabilistic fault rules    (default 0x5eed)
  --recovery POLICY arm the AER-driven recovery escalation ladder
                    (downtrain -> FLR -> containment -> hot reset ->
                    quarantine, docs/FAULTS.md). POLICY is default,
                    aggressive or conservative, optionally followed by
                    ,key=value overrides (e.g. "default,max-resets=4");
                    none disarms. Bandwidth runs report goodput before/
                    during/after the ladder's active window.
  --errors          print the AER error log, injected-fault tallies and
                    (when --recovery armed) the recovery transition log

self-checking options (run):
  --monitors        arm the invariant monitors (credit/tag/payload/replay
                    conservation — docs/CHECKING.md); prints a report and
                    exits non-zero on any violation

multi-tenant options (run — docs/ISOLATION.md):
  --tenants N       run N SR-IOV VFs sharing the port (1..64), one
                    closed-loop workload per VF; per-VF results print one
                    line each. --monitors arms the isolation invariants.
  --attacker K      mark VF K (0-based, < N) as the attacker for display;
                    fault plans scope themselves with vf:K clauses
  --isolation MODE  armed (default) | weakened — weakened swaps every
                    isolation mechanism for its shared implementation
  --weights LIST    comma-separated link-arbitration weight per VF,
                    e.g. 3,1,1,1 (default: equal shares)
  --ddio-quota LIST comma-separated DDIO ways per VF's LLC slice

chaos options:
  --trials N        trials to run                         (default 20)
  --master-seed N   campaign seed; every trial derives from it (default
                    0xc4a05)
  --iters N         measured transactions per trial       (default 400)
  --no-shrink       report the first failure without minimizing it
  --seed-bug        TEST-ONLY: plant the known credit-leak bug so the
                    campaign demonstrably catches and shrinks a failure
  --recovery POLICY arm the recovery ladder in every trial (same grammar
                    as run); trial outcomes gain the ladder's final state
                    and transition digest, carried through journals
  --throw-monitors  monitors throw at the violating event instead of
                    recording (first violation aborts the trial with a
                    stack-proximate diagnostic)
  --csv FILE        write the canonical per-trial CSV (isolated mode)
  --artifacts DIR   quarantine-artifact directory (default <journal>/artifacts)
  --tenants N       tenant chaos: N VFs per trial, every trial runs twice
                    (attacker plan armed vs stripped) and victims' digests
                    and counters are compared byte-for-byte
                    (docs/ISOLATION.md)
  --attacker K      the VF carrying the fault plan     (default 0)
  --isolation MODE  armed (default): any victim perturbation is a
                    violation | weakened: perturbation is reported as the
                    measured blast radius
                    (with --seed-bug and --tenants, plants the completion-
                    misroute bug instead of the credit leak)

overload options (open-loop RX overload — docs/OVERLOAD.md):
  --offered-load X  offered load as a multiple of the calibrated capacity,
                    e.g. 0.5, 1, 2, 4                    (default 2)
  --service-mode M  poll (busy-poll host service) | coalesce (IRQ
                    moderation with per-interrupt wakeup cost)
  --backpressure S  on | off — MAC-level PAUSE with a bounded budget
                    protecting the RX freelist            (default off)
  --frame N         frame size in bytes, 60..1514         (default 256)
  --arrivals A      poisson | burst arrival process       (default poisson)
  --burst N         frames per burst (burst arrivals)     (default 16)
  --flows N         Zipf-weighted flow count              (default 64)
  --zipf S          Zipf skew parameter                   (default 1.1)
  --frames N        offered frames per run                (default 20000)
  --ring-slots N    RX freelist ring slots                (default 512)
  --admission N     host-backlog tail-drop threshold; 0 disables admission
                    control                               (default 0)
  --pause-budget NS cumulative PAUSE cap in nanoseconds   (default 500000)
  --capacity-pps N  skip calibration and scale against this capacity
  --seed N          arrival-process RNG seed              (default 42)
  --faults / --fault-seed / --recovery / --errors  as in run: compose the
                    overload with a fault plan and the recovery ladder
  --monitors        arm the PCIe invariant monitors AND the overload
                    monitors (conservation / progress / occupancy —
                    docs/OVERLOAD.md); exits non-zero on any violation

overload-chaos options (chaos — docs/OVERLOAD.md):
  --offered-load X  switch every trial to the open-loop overload datapath
                    at X times that trial's calibrated capacity (mutually
                    exclusive with --tenants); per-trial frame size,
                    arrival process, ring size and admission threshold are
                    drawn from the trial stream
  --service-mode M  poll | coalesce, applied to every trial (default poll)
  --backpressure S  on | off, applied to every trial       (default off)

telemetry options (suite and chaos):
  --telemetry[=FILE]
                    record mergeable latency digests per trial/experiment
                    and print campaign-level percentiles (p50/p99/p999);
                    =FILE also writes the canonical serialized digest set,
                    byte-identical across serial, --threads, --jobs and
                    --resume runs (docs/OBSERVABILITY.md)

exec options (suite and chaos — any of them switches the command into
crash-safe isolated mode: every trial/experiment runs in a forked worker
with a deadline and an RSS budget, is retried with capped backoff, then
quarantined; completed results append to a resumable journal. docs/EXEC.md):
  --jobs N            concurrent worker processes          (default 1)
  --trial-timeout S   per-attempt wall-clock deadline, sec (default 120)
  --max-retries N     retries after the first attempt      (default 2)
  --rss-budget SZ     per-worker RSS budget, e.g. 2G       (default off)
  --journal DIR       journal directory for a fresh run    (default temp)
  --resume DIR        resume from DIR, skipping journaled results
                      (mutually exclusive with --journal)

perf options (docs/PERFORMANCE.md):
  --quick           ~10x smaller workloads (CI-sized; event counts stay
                    exact, just different constants)
  --json FILE       write the report JSON            (default BENCH_perf.json)
  --profile         arm the in-sim cost-center profiler around each workload
                    and print a ranked attribution table (distorts the
                    recorded rates; use to localize cost, not to gate)

thread options (suite and chaos):
  --threads N         in-process thread-parallel execution: independent
                      trials/experiments on a work-stealing pool (0 = all
                      hardware threads). Canonical output is byte-identical
                      to serial and to fork-isolated runs; crashes are NOT
                      contained. Mutually exclusive with --jobs.

exit codes (all commands):
  0  success          1  benchmark failure / invariant violation
  2  usage error      3  infrastructure or worker error (incl. quarantines)

unknown options are rejected; see docs/OBSERVABILITY.md for the schema.
)");
  std::exit(2);
}

std::uint64_t parse_u64(const char* key, const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
  if (s.empty() || errno != 0 || end != s.c_str() + s.size() ||
      s.front() == '-') {
    usage(("bad number '" + s + "' for --" + key).c_str());
  }
  return v;
}

double parse_f64(const char* key, const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || !(v >= 0.0)) {
    usage(("bad value '" + s + "' for --" + key).c_str());
  }
  return v;
}

/// `--recovery POLICY` (run and chaos); absent = "none" = never armed.
fault::RecoveryPolicy parse_recovery(const std::string& spec) {
  try {
    return fault::parse_recovery_policy(spec);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
}

std::uint64_t parse_size(const std::string& s) {
  if (s.empty()) usage("empty size");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  std::uint64_t mult = 1;
  if (end && *end) {
    switch (*end) {
      case 'k': case 'K': mult = 1ull << 10; break;
      case 'm': case 'M': mult = 1ull << 20; break;
      case 'g': case 'G': mult = 1ull << 30; break;
      default: usage(("bad size suffix in '" + s + "'").c_str());
    }
  }
  return static_cast<std::uint64_t>(v * static_cast<double>(mult));
}

core::BenchKind parse_kind(const std::string& s) {
  static const std::map<std::string, core::BenchKind> kinds = {
      {"LAT_RD", core::BenchKind::LatRd},
      {"LAT_WRRD", core::BenchKind::LatWrRd},
      {"BW_RD", core::BenchKind::BwRd},
      {"BW_WR", core::BenchKind::BwWr},
      {"BW_RDWR", core::BenchKind::BwRdWr},
  };
  const auto it = kinds.find(s);
  if (it == kinds.end()) usage(("unknown bench kind '" + s + "'").c_str());
  return it->second;
}

struct Args {
  std::map<std::string, std::string> values;
  std::vector<std::string> flags;

  bool has_flag(const std::string& f) const {
    for (const auto& g : flags) {
      if (g == f) return true;
    }
    return false;
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
};

/// Parse `--key value` / `--key=value` / `--flag` arguments, validating
/// every key against the command's allowed sets — a typo exits non-zero
/// instead of being silently swallowed. A key present in BOTH sets takes
/// an optional value: bare `--key` records a flag, `--key=V` a value
/// (the space-separated form is rejected so `--key next-arg` stays
/// unambiguous).
Args parse_args(int argc, char** argv, int start,
                const std::set<std::string>& value_keys,
                const std::set<std::string>& flag_keys) {
  Args args;
  for (int i = start; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) usage(("unexpected argument '" + a + "'").c_str());
    a = a.substr(2);
    const auto eq = a.find('=');
    if (eq != std::string::npos) {
      const std::string key = a.substr(0, eq);
      if (!value_keys.contains(key)) {
        if (flag_keys.contains(key)) {
          usage(("option --" + key + " does not take a value").c_str());
        }
        usage(("unknown option '--" + key + "'").c_str());
      }
      args.values[key] = a.substr(eq + 1);
    } else if (flag_keys.contains(a)) {
      args.flags.push_back(a);
    } else if (value_keys.contains(a)) {
      if (i + 1 >= argc) usage(("missing value for --" + a).c_str());
      args.values[a] = argv[++i];
    } else {
      usage(("unknown option '--" + a + "'").c_str());
    }
  }
  return args;
}

// "telemetry" appears in both the value and flag sets of run/suite/chaos:
// bare --telemetry arms it with stdout output, --telemetry=FILE writes the
// canonical artifact to FILE (docs/OBSERVABILITY.md).
const std::set<std::string> kRunValueKeys = {
    "system", "bench",  "size", "offset", "window",  "pattern", "cache",
    "numa",   "iommu",  "pages", "iters", "warmup",  "seed",    "trace",
    "counters", "faults", "fault-seed", "recovery", "telemetry",
    "telemetry-interval", "tenants", "attacker", "isolation", "weights",
    "ddio-quota"};
const std::set<std::string> kRunFlagKeys = {"cdf",    "histogram", "timeseries",
                                            "cmd-if", "breakdown", "errors",
                                            "monitors", "telemetry"};
// Any exec key present switches suite/chaos into crash-safe isolated mode.
const std::set<std::string> kExecValueKeys = {
    "jobs", "trial-timeout", "max-retries", "rss-budget", "journal", "resume"};
const std::set<std::string> kSuiteValueKeys = {
    "system", "filter", "csv", "threads", "telemetry",
    "jobs",   "trial-timeout", "max-retries", "rss-budget", "journal",
    "resume"};
const std::set<std::string> kSuiteFlagKeys = {"telemetry"};
const std::set<std::string> kChaosValueKeys = {
    "trials", "master-seed", "iters", "csv", "artifacts", "threads",
    "jobs",   "trial-timeout", "max-retries", "rss-budget", "journal",
    "resume", "telemetry", "recovery", "tenants", "attacker", "isolation",
    "offered-load", "service-mode", "backpressure"};
const std::set<std::string> kChaosFlagKeys = {"no-shrink", "seed-bug",
                                              "telemetry", "throw-monitors"};
const std::set<std::string> kOverloadValueKeys = {
    "system", "frame", "offered-load", "service-mode", "backpressure",
    "arrivals", "burst", "flows", "zipf", "frames", "ring-slots",
    "admission", "pause-budget", "capacity-pps", "seed", "faults",
    "fault-seed", "recovery"};
const std::set<std::string> kOverloadFlagKeys = {"monitors", "errors"};
const std::set<std::string> kPerfValueKeys = {"json"};
const std::set<std::string> kPerfFlagKeys = {"quick", "profile"};

/// `--telemetry` / `--telemetry=FILE`, shared by run/suite/chaos. An
/// explicitly empty FILE is a usage error, not a silent stdout fallback.
struct TelemetryOpt {
  bool enabled = false;
  std::string file;  ///< empty: canonical artifact goes to stdout
};

TelemetryOpt parse_telemetry(const Args& args) {
  TelemetryOpt t;
  if (args.has_flag("telemetry")) t.enabled = true;
  const auto it = args.values.find("telemetry");
  if (it != args.values.end()) {
    if (it->second.empty()) {
      usage("empty FILE for --telemetry= (use bare --telemetry for stdout)");
    }
    t.enabled = true;
    t.file = it->second;
  }
  return t;
}

/// Multi-tenant flags shared by run and chaos; tenants == 0 means the
/// classic single-tenant path (all other tenant flags then rejected).
struct TenantOpt {
  unsigned tenants = 0;
  unsigned attacker = 0;
  bool weakened = false;
  std::vector<unsigned> weights;
  std::vector<unsigned> ddio_quota;
};

std::vector<unsigned> parse_unsigned_list(const char* key,
                                          const std::string& s) {
  std::vector<unsigned> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    out.push_back(static_cast<unsigned>(parse_u64(key, tok)));
  }
  if (out.empty()) usage(("empty list for --" + std::string(key)).c_str());
  return out;
}

TenantOpt parse_tenant_opts(const Args& args) {
  TenantOpt t;
  if (args.values.contains("tenants")) {
    const std::uint64_t n = parse_u64("tenants", args.get("tenants", ""));
    if (n < 1 || n > 64) usage("--tenants must be in [1, 64]");
    t.tenants = static_cast<unsigned>(n);
  }
  for (const char* dep : {"attacker", "isolation", "weights", "ddio-quota"}) {
    if (t.tenants == 0 && args.values.contains(dep)) {
      usage(("--" + std::string(dep) + " requires --tenants").c_str());
    }
  }
  if (args.values.contains("attacker")) {
    const std::uint64_t k = parse_u64("attacker", args.get("attacker", ""));
    if (k >= t.tenants) {
      usage("--attacker must name a VF index below --tenants");
    }
    t.attacker = static_cast<unsigned>(k);
  }
  const std::string iso = args.get("isolation", "armed");
  if (iso == "weakened") t.weakened = true;
  else if (iso != "armed") usage("--isolation must be armed or weakened");
  if (args.values.contains("weights")) {
    t.weights = parse_unsigned_list("weights", args.get("weights", ""));
    if (t.weights.size() != t.tenants) {
      usage("--weights must list exactly one weight per tenant");
    }
    for (unsigned w : t.weights) {
      if (w == 0) usage("--weights entries must be >= 1");
    }
  }
  if (args.values.contains("ddio-quota")) {
    t.ddio_quota = parse_unsigned_list("ddio-quota", args.get("ddio-quota", ""));
    if (t.ddio_quota.size() != t.tenants) {
      usage("--ddio-quota must list exactly one way count per tenant");
    }
  }
  return t;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw exec::InfraError("cannot write " + path + ": " +
                           std::strerror(errno));
  }
  std::fputs(text.c_str(), f);
  std::fclose(f);
}

bool exec_mode_requested(const Args& args) {
  for (const auto& key : kExecValueKeys) {
    if (args.values.contains(key)) return true;
  }
  return false;
}

/// Shared exec-flag parsing for suite/chaos isolated modes. Returns the
/// (journal_dir, resume) pair via out-params on the caller's config.
exec::PoolConfig parse_pool_config(const Args& args, std::string& journal_dir,
                                   bool& resume) {
  exec::PoolConfig pool;
  pool.jobs = parse_u64("jobs", args.get("jobs", "1"));
  if (pool.jobs == 0) usage("--jobs must be >= 1");
  pool.limits.wall_seconds =
      parse_f64("trial-timeout", args.get("trial-timeout", "120"));
  if (pool.limits.wall_seconds <= 0) usage("--trial-timeout must be > 0");
  pool.max_retries = static_cast<unsigned>(
      parse_u64("max-retries", args.get("max-retries", "2")));
  const std::string rss = args.get("rss-budget", "");
  if (!rss.empty()) pool.limits.rss_bytes = parse_size(rss);
  const std::string journal = args.get("journal", "");
  const std::string resume_dir = args.get("resume", "");
  if (!journal.empty() && !resume_dir.empty()) {
    usage("--journal and --resume are mutually exclusive");
  }
  journal_dir = resume_dir.empty() ? journal : resume_dir;
  resume = !resume_dir.empty();
  return pool;
}

int cmd_list_systems() {
  std::printf("%-16s %-28s %-6s %-13s %s\n", "name", "cpu", "numa", "arch",
              "adapter");
  for (const auto& p : sys::all_profiles()) {
    std::printf("%-16s %-28s %-6s %-13s %s\n", p.name.c_str(), p.cpu.c_str(),
                p.numa_nodes > 1 ? "2-way" : "no", p.arch.c_str(),
                p.adapter.c_str());
  }
  return 0;
}

sim::SystemConfig configured_system(const Args& args,
                                    core::BenchParams& params) {
  const std::string system_name = args.get("system", "");
  if (system_name.empty()) usage("--system is required");
  auto cfg = sys::profile_by_name(system_name).config;

  params.transfer_size =
      static_cast<std::uint32_t>(parse_size(args.get("size", "64")));
  params.offset = static_cast<std::uint32_t>(parse_size(args.get("offset", "0")));
  params.window_bytes = parse_size(args.get("window", "8K"));
  params.iterations = parse_u64("iters", args.get("iters", "20000"));
  params.warmup = parse_u64("warmup", args.get("warmup", "0"));
  params.seed = parse_u64("seed", args.get("seed", "42"));
  params.use_cmd_if = args.has_flag("cmd-if");

  const std::string pattern = args.get("pattern", "rand");
  if (pattern == "rand") params.pattern = core::AccessPattern::Random;
  else if (pattern == "seq") params.pattern = core::AccessPattern::Sequential;
  else usage("--pattern must be rand or seq");

  const std::string cache = args.get("cache", "warm");
  if (cache == "warm") params.cache_state = core::CacheState::HostWarm;
  else if (cache == "cold") params.cache_state = core::CacheState::Thrash;
  else if (cache == "device") params.cache_state = core::CacheState::DeviceWarm;
  else usage("--cache must be warm, cold or device");

  const std::string numa = args.get("numa", "local");
  if (numa == "local") params.numa_local = true;
  else if (numa == "remote") params.numa_local = false;
  else usage("--numa must be local or remote");

  params.page_bytes = parse_size(args.get("pages", "4K"));
  const std::string iommu = args.get("iommu", "off");
  if (iommu == "on") {
    cfg = sys::with_iommu(cfg, true, params.page_bytes);
  } else if (iommu != "off") {
    usage("--iommu must be on or off");
  }

  const std::string faults = args.get("faults", "");
  if (!faults.empty()) {
    cfg.fault_plan = fault::parse_plan(faults);
    cfg.fault_plan.seed = parse_u64("fault-seed", args.get("fault-seed", "0x5eed"));
  }
  cfg.recovery = parse_recovery(args.get("recovery", "none"));
  return cfg;
}

/// Multi-tenant run: one closed-loop workload per VF on a
/// MultiTenantSystem, one result line per VF. The observability stack
/// (traces, counters CSV, breakdown, telemetry) is single-system-only.
int cmd_run_tenants(const Args& args, const TenantOpt& topt) {
  for (const char* incompatible :
       {"trace", "counters", "telemetry", "telemetry-interval"}) {
    if (args.values.contains(incompatible)) {
      usage(("--" + std::string(incompatible) +
             " is not supported with --tenants").c_str());
    }
  }
  for (const char* incompatible :
       {"cdf", "histogram", "timeseries", "breakdown", "telemetry"}) {
    if (args.has_flag(incompatible)) {
      usage(("--" + std::string(incompatible) +
             " is not supported with --tenants").c_str());
    }
  }

  core::BenchParams params;
  params.kind = parse_kind(args.get("bench", "LAT_RD"));
  sim::MultiTenantConfig mc;
  mc.base = configured_system(args, params);
  mc.tenants = topt.tenants;
  mc.weights = topt.weights;
  mc.ddio_quota = topt.ddio_quota;
  mc.isolation = topt.weakened ? sim::TenantIsolation::all_weakened()
                               : sim::TenantIsolation::all_armed();
  sim::MultiTenantSystem system(mc);

  std::optional<check::TenantMonitorSuite> monitors;
  if (args.has_flag("monitors")) monitors.emplace(system);

  const auto results = core::run_tenant_bench(system, params);
  for (const auto& r : results) {
    std::printf(
        "vf%-2u%s p50=%.1fns p99=%.1fns p999=%.1fns goodput=%.2fGb/s "
        "ops=%llu lost=%llu B\n",
        r.vf,
        (args.values.contains("attacker") && r.vf == topt.attacker)
            ? " [attacker]"
            : "",
        r.latency.quantile_ns(0.5), r.latency.quantile_ns(0.99),
        r.latency.quantile_ns(0.999), r.goodput_gbps,
        static_cast<unsigned long long>(r.ops),
        static_cast<unsigned long long>(r.lost_payload_bytes));
  }

  if (args.has_flag("errors")) {
    std::printf("port AER:\n%s", system.port_aer().to_table().c_str());
    for (unsigned vf = 0; vf < system.tenants(); ++vf) {
      std::printf("vf%u AER:\n%s", vf, system.aer(vf).to_table().c_str());
    }
    if (auto* inj = system.fault_injector()) {
      std::printf("%s", inj->to_table().c_str());
    }
    for (unsigned vf = 0; vf < system.tenants(); ++vf) {
      if (const auto* rec = system.recovery(vf)) {
        std::printf("vf%u recovery:\n%s", vf, rec->to_table().c_str());
      }
    }
    if (system.device_wide_actions() != 0) {
      std::printf("device-wide recovery actions (blast radius): %llu\n",
                  static_cast<unsigned long long>(
                      system.device_wide_actions()));
    }
  }
  if (monitors) {
    monitors->check_quiescent();
    std::printf("%s", monitors->report().c_str());
    if (!monitors->ok()) return kExitFailure;
  }
  return kExitOk;
}

int cmd_run(const Args& args) {
  const TenantOpt topt = parse_tenant_opts(args);
  if (topt.tenants > 0) return cmd_run_tenants(args, topt);
  core::BenchParams params;
  params.kind = parse_kind(args.get("bench", "LAT_RD"));
  const auto cfg = configured_system(args, params);
  sim::System system(cfg);

  // Armed before the run so every event is checked; record mode keeps
  // the run alive to quiesce, where the conservation checks live.
  std::optional<check::MonitorSuite> monitors;
  if (args.has_flag("monitors")) monitors.emplace(system);

  const std::string trace_path = args.get("trace", "");
  const std::string counters_dest = args.get("counters", "");
  const TelemetryOpt telemetry = parse_telemetry(args);
  core::ObsSession::Options oopts;
  oopts.trace = !trace_path.empty();
  oopts.breakdown = args.has_flag("breakdown");
  oopts.telemetry = telemetry.enabled;
  if (args.values.contains("telemetry-interval")) {
    if (!telemetry.enabled) usage("--telemetry-interval requires --telemetry");
    const std::uint64_t interval =
        parse_u64("telemetry-interval", args.get("telemetry-interval", ""));
    if (interval == 0) usage("--telemetry-interval must be > 0 (picoseconds)");
    oopts.telemetry_interval_ps = static_cast<Picos>(interval);
  }
  std::optional<core::ObsSession> obs;
  if (oopts.trace || oopts.breakdown || oopts.telemetry ||
      !counters_dest.empty()) {
    obs.emplace(system, oopts);
  }

  if (core::is_latency(params.kind)) {
    const auto r = core::run_latency_bench(system, params);
    std::printf("%s\n", core::format(r).c_str());
    if (args.has_flag("cdf")) {
      std::printf("# cdf: latency_ns fraction\n%s",
                  core::cdf_dump(r).c_str());
    }
    if (args.has_flag("histogram")) {
      std::printf("# histogram: lo_ns hi_ns count\n%s",
                  core::histogram_dump(r).c_str());
    }
    if (args.has_flag("timeseries")) {
      std::printf("# timeseries: index latency_ns\n%s",
                  core::time_series_dump(r).c_str());
    }
  } else {
    const auto r = core::run_bandwidth_bench(system, params);
    std::printf("%s\n", core::format(r).c_str());
  }

  if (args.has_flag("errors")) {
    std::printf("%s", system.aer().to_table().c_str());
    if (auto* inj = system.fault_injector()) {
      std::printf("%s", inj->to_table().c_str());
    }
    if (const auto* rec = system.recovery()) {
      std::printf("%s", rec->to_table().c_str());
    }
  }
  if (oopts.breakdown) {
    // The model's stage budget applies to single-request reads on a
    // jitter-free path; skip the column when the size doesn't fit.
    std::optional<model::ReadStageBudget> budget;
    try {
      budget = model::dma_read_stage_budget(
          core::stage_budget_inputs(cfg, params), params.offset,
          params.transfer_size);
    } catch (const std::invalid_argument&) {
    }
    std::printf("%s", core::format_breakdown(obs->breakdown_report(),
                                             budget ? &*budget : nullptr)
                          .c_str());
  }
  if (!counters_dest.empty()) {
    if (counters_dest == "-") {
      std::printf("%s", obs->counters().to_table().c_str());
    } else {
      obs->counters().write_csv(counters_dest);
      std::printf("wrote %zu counters to %s\n", obs->counters().size(),
                  counters_dest.c_str());
    }
  }
  if (telemetry.enabled) {
    // Close the partial tail interval first so the CSV/JSON export and
    // the Chrome counter tracks below both see the complete series.
    obs->finish_telemetry();
    const obs::TimeSeries* ts = obs->telemetry();
    if (telemetry.file.empty()) {
      std::printf("# telemetry: %zu intervals of %lld ps%s\n",
                  ts->intervals().size(),
                  static_cast<long long>(oopts.telemetry_interval_ps),
                  ts->dropped() != 0 ? " (ring wrapped; oldest dropped)" : "");
      std::ostringstream os;
      ts->write_csv(os);
      std::fputs(os.str().c_str(), stdout);
    } else if (telemetry.file.size() >= 5 &&
               telemetry.file.ends_with(".json")) {
      std::ostringstream os;
      ts->write_json(os);
      write_text_file(telemetry.file, os.str());
      std::printf("wrote %zu telemetry intervals to %s\n",
                  ts->intervals().size(), telemetry.file.c_str());
    } else {
      ts->write_csv_file(telemetry.file);
      std::printf("wrote %zu telemetry intervals to %s\n",
                  ts->intervals().size(), telemetry.file.c_str());
    }
    // Per-stage latency digests ride on the breakdown's stage samples.
    if (oopts.breakdown) {
      const obs::DigestSet stages = obs->stage_digests();
      if (!stages.empty()) std::printf("%s", stages.to_table().c_str());
    }
  }
  if (!trace_path.empty()) {
    obs->write_trace_json(trace_path);
    std::printf("wrote %llu trace events to %s\n",
                static_cast<unsigned long long>(obs->sink()->size()),
                trace_path.c_str());
  }
  if (monitors) {
    monitors->check_quiescent();
    std::printf("%s", monitors->report().c_str());
    if (!monitors->ok()) return 1;
  }
  return 0;
}

nic::ServiceMode parse_service_mode_arg(const std::string& s) {
  try {
    return nic::parse_service_mode(s);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
}

bool parse_on_off(const char* key, const std::string& s) {
  if (s == "on") return true;
  if (s == "off") return false;
  usage(("--" + std::string(key) + " must be on or off").c_str());
}

/// Open-loop overload point: calibrate capacity closed-loop, then sustain
/// --offered-load times that rate through the same RX datapath with the
/// frame-accounting ledger printed (docs/OVERLOAD.md). --monitors arms
/// both the PCIe-level MonitorSuite and the OverloadMonitorSuite.
int cmd_overload(const Args& args) {
  core::BenchParams params;  // only the system/fault/recovery flags apply
  const auto cfg = configured_system(args, params);

  nic::OverloadConfig ocfg;
  ocfg.frame_bytes =
      static_cast<std::uint32_t>(parse_size(args.get("frame", "256")));
  ocfg.offered_load = parse_f64("offered-load", args.get("offered-load", "2"));
  if (ocfg.offered_load <= 0) usage("--offered-load must be > 0");
  ocfg.service = parse_service_mode_arg(args.get("service-mode", "poll"));
  ocfg.backpressure =
      parse_on_off("backpressure", args.get("backpressure", "off"));
  const std::string arrivals = args.get("arrivals", "poisson");
  if (arrivals == "poisson") ocfg.arrivals = core::ArrivalModel::Poisson;
  else if (arrivals == "burst") ocfg.arrivals = core::ArrivalModel::Burst;
  else usage("--arrivals must be poisson or burst");
  ocfg.burst_frames =
      static_cast<std::uint32_t>(parse_u64("burst", args.get("burst", "16")));
  ocfg.flows =
      static_cast<std::uint32_t>(parse_u64("flows", args.get("flows", "64")));
  ocfg.zipf_s = parse_f64("zipf", args.get("zipf", "1.1"));
  ocfg.frames = parse_u64("frames", args.get("frames", "20000"));
  ocfg.ring_slots = static_cast<std::uint32_t>(
      parse_u64("ring-slots", args.get("ring-slots", "512")));
  ocfg.admission_slots = static_cast<std::uint32_t>(
      parse_u64("admission", args.get("admission", "0")));
  ocfg.pause_budget = static_cast<Picos>(from_nanos(static_cast<double>(
      parse_u64("pause-budget", args.get("pause-budget", "500000")))));
  ocfg.capacity_pps =
      parse_u64("capacity-pps", args.get("capacity-pps", "0"));
  ocfg.seed = parse_u64("seed", args.get("seed", "42"));
  ocfg.validate();

  if (ocfg.capacity_pps == 0) {
    // Calibration strips faults/recovery: capacity is a property of the
    // healthy path, so the same seed yields the same scale whether or
    // not a fault plan rides along.
    ocfg.capacity_pps = nic::calibrate_capacity(cfg, ocfg);
  }

  sim::System system(cfg);
  std::optional<check::MonitorSuite> monitors;
  std::optional<check::OverloadMonitorSuite> omonitors;
  if (args.has_flag("monitors")) {
    monitors.emplace(system);
    omonitors.emplace();
  }
  const auto r = nic::run_overload(system, ocfg,
                                   omonitors ? omonitors->probe() : nullptr);

  const auto& st = r.stats;
  std::printf("capacity: %llu frames/s (closed-loop calibration)\n",
              static_cast<unsigned long long>(r.capacity_pps));
  std::printf(
      "offered:  %.2fx capacity = %.0f frames/s (%s arrivals, %u flows, "
      "%u B frames)\n",
      ocfg.offered_load, r.offered_pps, core::to_string(ocfg.arrivals),
      ocfg.flows, ocfg.frame_bytes);
  std::printf(
      "goodput:  %.0f frames/s (%.2f Gb/s) — delivered %llu of %llu "
      "offered in %.3f ms\n",
      r.goodput_pps, r.goodput_gbps,
      static_cast<unsigned long long>(st.delivered),
      static_cast<unsigned long long>(st.offered),
      static_cast<double>(r.elapsed) / 1e9);
  std::printf("drops:    mac=%llu ring=%llu admission=%llu (total %llu)\n",
              static_cast<unsigned long long>(st.dropped_mac),
              static_cast<unsigned long long>(st.dropped_ring),
              static_cast<unsigned long long>(st.dropped_admission),
              static_cast<unsigned long long>(st.dropped_total()));
  if (ocfg.backpressure) {
    std::printf("pause:    %llu assertion(s), %.1f us asserted of %.1f us "
                "budget\n",
                static_cast<unsigned long long>(st.pause_events),
                static_cast<double>(st.pause_ps) / 1e6,
                static_cast<double>(st.pause_budget) / 1e6);
  }
  if (ocfg.service == nic::ServiceMode::Coalesce) {
    std::printf("irqs:     %llu (moderation %u frames, wakeup %.1f ns)\n",
                static_cast<unsigned long long>(st.irqs),
                ocfg.irq_moderation,
                static_cast<double>(ocfg.irq_cost) / 1e3);
  }
  std::printf("occupancy: ring peak %u/%u, backlog peak %llu%s\n",
              st.ring_max_pending, st.ring_slots,
              static_cast<unsigned long long>(st.backlog_max),
              ocfg.admission_slots != 0 ? " (admission-capped)" : "");
  if (!r.latency.empty()) {
    std::printf(
        "latency:  p50=%.1fns p99=%.1fns p999=%.1fns max=%.1fns "
        "(arrival -> delivery)\n",
        r.latency.quantile_ns(0.5), r.latency.quantile_ns(0.99),
        r.latency.quantile_ns(0.999),
        static_cast<double>(r.latency.max()) / 1e3);
  }
  std::printf("ledger:   %s\n", r.ledger().c_str());

  if (args.has_flag("errors")) {
    std::printf("%s", system.aer().to_table().c_str());
    if (auto* inj = system.fault_injector()) {
      std::printf("%s", inj->to_table().c_str());
    }
    if (const auto* rec = system.recovery()) {
      std::printf("%s", rec->to_table().c_str());
    }
  }
  int exit_code = kExitOk;
  if (monitors) {
    monitors->check_quiescent();
    std::printf("%s", monitors->report().c_str());
    std::printf("%s", omonitors->report().c_str());
    if (!monitors->ok() || !omonitors->ok()) exit_code = kExitFailure;
  }
  return exit_code;
}

/// Crash-safe isolated campaign: progress to stderr, the canonical
/// byte-stable summary (what the CI resume leg diffs) alone on stdout.
int cmd_chaos_isolated(const Args& args, const check::ChaosConfig& chaos) {
  check::ExecCampaignConfig cfg;
  cfg.chaos = chaos;
  cfg.pool = parse_pool_config(args, cfg.journal_dir, cfg.resume);
  cfg.artifacts_dir = args.get("artifacts", "");

  std::fprintf(stderr,
               "chaos: %zu trials, master seed 0x%llx, %zu iters/trial, "
               "%zu worker%s%s%s\n",
               chaos.trials,
               static_cast<unsigned long long>(chaos.master_seed),
               chaos.iterations, cfg.pool.jobs, cfg.pool.jobs == 1 ? "" : "s",
               cfg.resume ? ", resuming" : "",
               chaos.seed_credit_leak_bug ? " [credit-leak bug planted]" : "");
  const auto result = check::run_campaign_isolated(
      cfg, [](const check::TrialRecord& r) {
        std::fprintf(stderr, "%s%s\n", r.summary_line().c_str(),
                     r.resumed ? "  [resumed]" : "");
      });

  std::fputs(result.summary_text(chaos).c_str(), stdout);
  if (chaos.telemetry) {
    std::fputs(result.digests.to_table().c_str(), stdout);
    const TelemetryOpt telemetry = parse_telemetry(args);
    if (!telemetry.file.empty()) {
      write_text_file(telemetry.file, result.digests.serialize() + "\n");
      std::fprintf(stderr, "wrote campaign latency digests to %s\n",
                   telemetry.file.c_str());
    }
  }
  const std::string csv = args.get("csv", "");
  if (!csv.empty()) {
    result.write_csv(csv);
    std::fprintf(stderr, "wrote %zu trial records to %s\n",
                 result.records.size(), csv.c_str());
  }
  std::fprintf(stderr, "journal: %s\n", result.journal_dir.c_str());
  if (result.minimized) {
    const auto& m = *result.minimized;
    std::fprintf(stderr, "minimized after %zu runs:\n  replay: %s\n", m.runs,
                 m.minimal.repro_command().c_str());
  }
  if (result.quarantined != 0) {
    std::fprintf(stderr, "quarantine artifacts: %s\n",
                 result.artifacts_dir.c_str());
    return kExitInfra;
  }
  return result.violation != 0 ? kExitFailure : kExitOk;
}

int cmd_chaos(const Args& args) {
  check::ChaosConfig cfg;
  cfg.trials = parse_u64("trials", args.get("trials", "20"));
  cfg.master_seed = parse_u64("master-seed", args.get("master-seed", "0xc4a05"));
  cfg.iterations = parse_u64("iters", args.get("iters", "400"));
  cfg.shrink = !args.has_flag("no-shrink");
  cfg.recovery = parse_recovery(args.get("recovery", "none"));
  cfg.monitors_throw = args.has_flag("throw-monitors");
  const TenantOpt topt = parse_tenant_opts(args);
  if (!topt.weights.empty() || !topt.ddio_quota.empty()) {
    usage("--weights/--ddio-quota apply to run, not chaos (trials use "
          "equal shares)");
  }
  cfg.tenants = topt.tenants;
  cfg.attacker = topt.attacker;
  cfg.isolation_weakened = topt.weakened;
  // One --seed-bug flag, two planted bugs: the credit leak for classic
  // campaigns, the completion misroute for tenant campaigns.
  cfg.seed_credit_leak_bug = args.has_flag("seed-bug") && cfg.tenants == 0;
  cfg.seed_misroute_bug = args.has_flag("seed-bug") && cfg.tenants > 0;

  if (args.values.contains("offered-load")) {
    cfg.offered_load =
        parse_f64("offered-load", args.get("offered-load", ""));
    if (cfg.offered_load <= 0) usage("--offered-load must be > 0");
    if (cfg.tenants > 0) {
      usage("--offered-load (overload chaos) and --tenants (tenant chaos) "
            "are mutually exclusive");
    }
  }
  for (const char* dep : {"service-mode", "backpressure"}) {
    if (cfg.offered_load == 0 && args.values.contains(dep)) {
      usage(("--" + std::string(dep) + " requires --offered-load").c_str());
    }
  }
  cfg.service = parse_service_mode_arg(args.get("service-mode", "poll"));
  cfg.backpressure =
      parse_on_off("backpressure", args.get("backpressure", "off"));
  const TelemetryOpt telemetry = parse_telemetry(args);
  cfg.telemetry = telemetry.enabled;

  if (args.values.contains("threads")) {
    if (exec_mode_requested(args)) {
      usage("--threads (in-process) and the exec options (forked workers) "
            "are mutually exclusive");
    }
    cfg.threads = parse_u64("threads", args.get("threads", "0"));
    if (cfg.threads == 0) cfg.threads = exec::ThreadPool(0).threads();
  }

  if (exec_mode_requested(args)) return cmd_chaos_isolated(args, cfg);
  if (args.values.contains("csv") || args.values.contains("artifacts")) {
    usage("--csv/--artifacts require isolated mode (pass an exec option)");
  }

  std::printf("chaos: %zu trials, master seed 0x%llx, %zu iters/trial%s%s\n",
              cfg.trials, static_cast<unsigned long long>(cfg.master_seed),
              cfg.iterations,
              cfg.seed_credit_leak_bug ? " [credit-leak bug planted]" : "",
              cfg.seed_misroute_bug ? " [misroute bug planted]" : "");
  if (cfg.tenants > 0) {
    std::printf("tenants: %u VFs, attacker vf%u, isolation %s\n", cfg.tenants,
                cfg.attacker, cfg.isolation_weakened ? "weakened" : "armed");
  }
  if (cfg.offered_load > 0) {
    std::printf("overload: %gx capacity per trial, %s service, "
                "backpressure %s\n",
                cfg.offered_load, nic::to_string(cfg.service),
                cfg.backpressure ? "on" : "off");
  }
  const auto result = check::run_campaign(
      cfg, [](const check::TrialSpec& spec, const check::TrialOutcome& out) {
        std::printf("%-4s %s\n", out.failed ? "FAIL" : "ok",
                    spec.describe().c_str());
        if (out.failed) std::printf("     %s\n", out.summary().c_str());
      });

  if (cfg.telemetry) {
    std::fputs(result.digests.to_table().c_str(), stdout);
    if (!telemetry.file.empty()) {
      write_text_file(telemetry.file, result.digests.serialize() + "\n");
      std::fprintf(stderr, "wrote campaign latency digests to %s\n",
                   telemetry.file.c_str());
    }
  }
  if (cfg.recovery.enabled) {
    std::printf("recovery: ladder fired in %zu trial(s), %zu quarantined\n",
                result.trials_recovered, result.trials_quarantined);
  }
  if (cfg.tenants > 0) {
    std::printf("isolation (%s): blast radius %llu perturbed tenant-run(s), "
                "%llu device-wide action(s)\n",
                cfg.isolation_weakened ? "weakened" : "armed",
                static_cast<unsigned long long>(result.perturbed_victims),
                static_cast<unsigned long long>(result.device_wide_actions));
  }
  if (cfg.offered_load > 0) {
    std::printf("overload: offered=%llu delivered=%llu dropped=%llu\n",
                static_cast<unsigned long long>(result.overload_offered),
                static_cast<unsigned long long>(result.overload_delivered),
                static_cast<unsigned long long>(result.overload_dropped));
  }
  if (result.ok()) {
    std::printf("chaos: %zu/%zu trials passed\n", result.trials_run,
                result.trials_run);
    return 0;
  }
  if (result.minimized) {
    const auto& m = *result.minimized;
    std::printf("\nminimized after %zu runs (%zu fault clause%s):\n  %s\n",
                m.runs, m.minimal.plan.rules.size(),
                m.minimal.plan.rules.size() == 1 ? "" : "s",
                m.outcome.summary().c_str());
    std::printf("replay:\n  %s\n", m.minimal.repro_command().c_str());
  } else if (result.first_failure) {
    std::printf("\nreplay (unminimized):\n  %s\n",
                result.first_failure->repro_command().c_str());
  }
  return 1;
}

int cmd_perf(const Args& args) {
  check::PerfConfig cfg;
  cfg.quick = args.has_flag("quick");
  cfg.profile = args.has_flag("profile");
  const std::string json_path = args.get("json", "BENCH_perf.json");

  const auto report = check::run_perf(cfg);
  std::printf("%s", report.summary().c_str());

  const std::string json = report.to_json();
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", json_path.c_str(),
                 std::strerror(errno));
    return kExitInfra;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return kExitOk;
}

int cmd_suite(const Args& args) {
  const std::string system_name = args.get("system", "");
  if (system_name.empty()) usage("--system is required");
  sys::profile_by_name(system_name);  // validate early

  const auto suite = core::Suite::standard(system_name);
  std::size_t done = 0;
  const auto progress = [&](const core::ExperimentRecord& r) {
    ++done;
    std::fprintf(stderr, "[%3zu] %-22s %.2fs\n", done,
                 r.experiment.name.c_str(), r.wall_seconds);
  };

  std::vector<core::ExperimentRecord> records;
  int exit_code = kExitOk;
  const bool threaded = args.values.contains("threads");
  if (threaded && args.values.contains("jobs")) {
    usage("--threads (in-process) and --jobs (forked workers) are mutually "
          "exclusive");
  }
  if (exec_mode_requested(args) || threaded) {
    core::IsolatedRunConfig cfg;
    cfg.pool = parse_pool_config(args, cfg.journal_dir, cfg.resume);
    if (threaded) {
      cfg.threads = parse_u64("threads", args.get("threads", "0"));
      if (cfg.threads == 0) cfg.threads = exec::ThreadPool(0).threads();
    }
    core::MultiRunner runner(suite, cfg);
    auto res = runner.run(
        args.get("filter", ""), progress,
        [](const std::string& name, const exec::JobResult& job) {
          std::fprintf(stderr, "quarantined: %s (%s after %u attempt%s)\n",
                       name.c_str(), job.outcome.classify().c_str(),
                       job.attempts, job.attempts == 1 ? "" : "s");
        });
    records = std::move(res.records);
    std::fprintf(stderr, "journal: %s\n", res.journal_dir.c_str());
    if (!res.quarantined.empty()) {
      std::fprintf(stderr, "%zu experiment%s quarantined; artifacts: %s\n",
                   res.quarantined.size(),
                   res.quarantined.size() == 1 ? "" : "s",
                   res.artifacts_dir.c_str());
      exit_code = kExitInfra;
    }
  } else {
    records = suite.run(args.get("filter", ""), progress);
  }

  std::printf("%s", core::summarize(records).c_str());
  const TelemetryOpt telemetry = parse_telemetry(args);
  if (telemetry.enabled) {
    std::printf("%s", core::digest_summary(records).c_str());
    if (!telemetry.file.empty()) {
      // Canonical serialized digest set, keyed by experiment name: the
      // artifact the byte-identity goldens diff across serial, --threads,
      // forked and resumed runs.
      obs::DigestSet set;
      for (const auto& r : records) {
        if (r.latency_digest.empty()) continue;
        obs::Digest d;
        if (obs::Digest::deserialize(r.latency_digest, &d)) {
          set.at(r.experiment.name).merge(d);
        }
      }
      write_text_file(telemetry.file, set.serialize() + "\n");
      std::fprintf(stderr, "wrote %zu latency digests to %s\n", set.size(),
                   telemetry.file.c_str());
    }
  }
  const std::string csv = args.get("csv", "");
  if (!csv.empty()) {
    core::write_csv(records, csv);
    std::fprintf(stderr, "wrote %zu records to %s\n", records.size(),
                 csv.c_str());
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list-systems") return cmd_list_systems();
    if (cmd == "run") {
      return cmd_run(parse_args(argc, argv, 2, kRunValueKeys, kRunFlagKeys));
    }
    if (cmd == "suite") {
      return cmd_suite(
          parse_args(argc, argv, 2, kSuiteValueKeys, kSuiteFlagKeys));
    }
    if (cmd == "chaos") {
      return cmd_chaos(
          parse_args(argc, argv, 2, kChaosValueKeys, kChaosFlagKeys));
    }
    if (cmd == "overload") {
      return cmd_overload(
          parse_args(argc, argv, 2, kOverloadValueKeys, kOverloadFlagKeys));
    }
    if (cmd == "perf") {
      return cmd_perf(parse_args(argc, argv, 2, kPerfValueKeys, kPerfFlagKeys));
    }
  } catch (const exec::InfraError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInfra;
  } catch (const std::filesystem::filesystem_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInfra;
  } catch (const std::invalid_argument& e) {
    usage(e.what());  // bad flag values, unknown systems: usage errors
  } catch (const std::out_of_range& e) {
    usage(e.what());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitFailure;
  }
  usage(("unknown command '" + cmd + "'").c_str());
}
