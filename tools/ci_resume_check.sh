#!/usr/bin/env bash
# Interrupted-resume equivalence check (docs/EXEC.md), the CI version of
# tests/test_exec_resume.cpp's byte-identity assertion — but with a real
# SIGKILL instead of the test-only stop_after hook:
#
#   1. run an uninterrupted reference campaign and keep its CSV;
#   2. run the same campaign into a fresh journal and SIGKILL the whole
#      process group mid-run;
#   3. resume from the half-written journal;
#   4. require the resumed CSV and canonical summary to be byte-identical
#      to the reference.
#
# Usage: ci_resume_check.sh [path-to-pciebench]
# PCIEB_RESUME_EXTRA adds flags to every campaign invocation — CI's
# recovery leg sets it to "--recovery default --throw-monitors" so the
# journal-carried ladder outcomes go through the same byte-identity gate.
set -u

PCIEBENCH="${1:-./build/tools/pciebench}"
TRIALS=300
ITERS=300
SEED=0xc4a05
JOBS=2
KILL_AFTER=1.0   # seconds into the interrupted run
read -r -a EXTRA <<< "${PCIEB_RESUME_EXTRA:-}"

if [[ ! -x "$PCIEBENCH" ]]; then
    echo "ci_resume_check: $PCIEBENCH not found or not executable" >&2
    exit 3
fi

WORK="$(mktemp -d /tmp/pcieb-resume-ci-XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

run_chaos() { # journal-dir csv-path extra-args...
    local journal="$1" csv="$2"; shift 2
    "$PCIEBENCH" chaos --trials "$TRIALS" --iters "$ITERS" \
        --master-seed "$SEED" --jobs "$JOBS" --no-shrink \
        --csv "$csv" ${EXTRA[@]+"${EXTRA[@]}"} "$@" 2>"$journal.log"
}

echo "== reference (uninterrupted) run"
run_chaos "$WORK/ref" "$WORK/ref.csv" --journal "$WORK/ref" \
    >"$WORK/ref.summary"
status=$?
if [[ $status -ne 0 && $status -ne 1 ]]; then
    echo "ci_resume_check: reference run failed (exit $status)" >&2
    tail -20 "$WORK/ref.log" >&2
    exit 3
fi

echo "== interrupted run (SIGKILL after ${KILL_AFTER}s)"
setsid "$PCIEBENCH" chaos --trials "$TRIALS" --iters "$ITERS" \
    --master-seed "$SEED" --jobs "$JOBS" --no-shrink \
    ${EXTRA[@]+"${EXTRA[@]}"} \
    --journal "$WORK/cut" >/dev/null 2>"$WORK/cut.log" &
VICTIM=$!
sleep "$KILL_AFTER"
# Kill the whole process group: the supervisor AND its forked workers
# die instantly, mid-campaign, exactly like a crashed CI box.
kill -KILL -- "-$VICTIM" 2>/dev/null
wait "$VICTIM" 2>/dev/null

COMMITTED=$(find "$WORK/cut" -maxdepth 1 -name 'r*.rec' | wc -l)
echo "   journal holds $COMMITTED/$TRIALS records after the kill"
if [[ "$COMMITTED" -ge "$TRIALS" ]]; then
    echo "ci_resume_check: WARNING: the interrupted run completed before" \
         "the kill; the resume below proves nothing extra. Consider" \
         "lowering KILL_AFTER or raising TRIALS." >&2
fi

echo "== resumed run"
run_chaos "$WORK/cut" "$WORK/resumed.csv" --resume "$WORK/cut" \
    >"$WORK/resumed.summary"
status=$?
if [[ $status -ne 0 && $status -ne 1 ]]; then
    echo "ci_resume_check: resumed run failed (exit $status)" >&2
    tail -20 "$WORK/cut.log" >&2
    exit 3
fi

fail=0
if ! cmp -s "$WORK/ref.csv" "$WORK/resumed.csv"; then
    echo "ci_resume_check: FAIL: resumed CSV differs from reference" >&2
    diff -u "$WORK/ref.csv" "$WORK/resumed.csv" | head -40 >&2
    fail=1
fi
if ! cmp -s "$WORK/ref.summary" "$WORK/resumed.summary"; then
    echo "ci_resume_check: FAIL: resumed summary differs from reference" >&2
    diff -u "$WORK/ref.summary" "$WORK/resumed.summary" | head -40 >&2
    fail=1
fi
if [[ $fail -ne 0 ]]; then
    exit 1
fi

echo "ok: resumed output is byte-identical to the uninterrupted run" \
     "($COMMITTED records survived the SIGKILL)"
